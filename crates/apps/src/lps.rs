//! Longest Palindromic Subsequence (paper §VIII).
//!
//! Interval DP over the upper triangle (Fig. 5 (d)):
//!
//! ```text
//! D(i,i) = 1
//! D(i,j) = 2                     if x_i = x_j and j = i+1
//! D(i,j) = D(i+1,j-1) + 2        if x_i = x_j
//! D(i,j) = max(D(i+1,j), D(i,j-1))   otherwise
//! ```

use dpx10_core::{DepView, DpApp};
use dpx10_dag::{builtin::IntervalUpper, VertexId};

/// The LPS application over one string.
pub struct LpsApp {
    /// The subject string.
    pub text: Vec<u8>,
}

impl LpsApp {
    /// Creates the app; the string must be non-empty.
    pub fn new(text: Vec<u8>) -> Self {
        assert!(!text.is_empty(), "LPS needs a non-empty string");
        LpsApp { text }
    }

    /// The interval pattern over `|text|`.
    pub fn pattern(&self) -> IntervalUpper {
        IntervalUpper::new(self.text.len() as u32)
    }

    /// Length of the longest palindromic subsequence = `D(0, n-1)`.
    pub fn answer(&self, result: &dpx10_core::DagResult<u32>) -> u32 {
        result.get(0, self.text.len() as u32 - 1)
    }
}

impl DpApp for LpsApp {
    type Value = u32;

    fn compute(&self, id: VertexId, deps: &DepView<'_, u32>) -> u32 {
        let (i, j) = (id.i, id.j);
        if i == j {
            return 1;
        }
        let xi = self.text[i as usize];
        let xj = self.text[j as usize];
        if xi == xj {
            if j == i + 1 {
                2
            } else {
                deps.get(i + 1, j - 1).expect("inner dep") + 2
            }
        } else {
            *deps
                .get(i + 1, j)
                .expect("drop-left dep")
                .max(deps.get(i, j - 1).expect("drop-right dep"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial;
    use dpx10_core::{EngineConfig, ThreadedEngine};

    fn lps_of(text: &[u8]) -> u32 {
        let app = LpsApp::new(text.to_vec());
        let pattern = app.pattern();
        let n = text.len() as u32;
        let result = ThreadedEngine::new(app, pattern, EngineConfig::flat(2))
            .run()
            .unwrap();
        result.get(0, n - 1)
    }

    #[test]
    fn classic_cases() {
        assert_eq!(lps_of(b"BBABCBCAB"), 7); // BABCBAB
        assert_eq!(lps_of(b"A"), 1);
        assert_eq!(lps_of(b"AB"), 1);
        assert_eq!(lps_of(b"AA"), 2);
        assert_eq!(lps_of(b"RACECAR"), 7);
    }

    #[test]
    fn matches_serial_reference() {
        for text in [b"AGBDBA".as_slice(), b"CHARACTER", b"XYZZYXQQ"] {
            assert_eq!(
                lps_of(text),
                serial::lps(text),
                "{:?}",
                std::str::from_utf8(text)
            );
        }
    }

    #[test]
    fn palindrome_scores_its_own_length() {
        assert_eq!(lps_of(b"ABCDEDCBA"), 9);
    }
}

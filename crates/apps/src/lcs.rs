//! Longest Common Subsequence — the paper's §IV walk-through (Fig. 1),
//! with the backtracking post-processing the paper sketches done in
//! `app_finished`-style helpers.

use dpx10_core::{DagResult, DepView, DpApp};
use dpx10_dag::{builtin::Grid3, VertexId};

/// The LCS application over two strings.
///
/// Note the paper's Fig. 1 calls the example "longest common substring"
/// but computes the classic longest common *subsequence* recurrence
/// (`F[i,j] = F[i-1,j-1]+1` on match, else `max` of neighbours); we
/// implement the recurrence as given.
pub struct LcsApp {
    /// First string.
    pub a: Vec<u8>,
    /// Second string.
    pub b: Vec<u8>,
}

impl LcsApp {
    /// Creates the app.
    pub fn new(a: Vec<u8>, b: Vec<u8>) -> Self {
        LcsApp { a, b }
    }

    /// The `(|a|+1) × (|b|+1)` Fig. 5 (b) pattern.
    pub fn pattern(&self) -> Grid3 {
        Grid3::new(self.a.len() as u32 + 1, self.b.len() as u32 + 1)
    }

    /// Length of the LCS.
    pub fn length(&self, result: &DagResult<u32>) -> u32 {
        result.get(self.a.len() as u32, self.b.len() as u32)
    }

    /// Reconstructs one LCS by backtracking over the finished matrix —
    /// the "result can be processed using backtracking method" step of
    /// paper §IV.
    pub fn backtrack(&self, result: &DagResult<u32>) -> Vec<u8> {
        let mut out = Vec::new();
        let (mut i, mut j) = (self.a.len() as u32, self.b.len() as u32);
        while i > 0 && j > 0 {
            if self.a[(i - 1) as usize] == self.b[(j - 1) as usize] {
                out.push(self.a[(i - 1) as usize]);
                i -= 1;
                j -= 1;
            } else if result.get(i - 1, j) >= result.get(i, j - 1) {
                i -= 1;
            } else {
                j -= 1;
            }
        }
        out.reverse();
        out
    }
}

impl DpApp for LcsApp {
    type Value = u32;

    fn compute(&self, id: VertexId, deps: &DepView<'_, u32>) -> u32 {
        let (i, j) = (id.i, id.j);
        if i == 0 || j == 0 {
            return 0;
        }
        if self.a[(i - 1) as usize] == self.b[(j - 1) as usize] {
            deps.get(i - 1, j - 1).expect("diag dep") + 1
        } else {
            *deps
                .get(i - 1, j)
                .expect("up dep")
                .max(deps.get(i, j - 1).expect("left dep"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial;
    use dpx10_core::{EngineConfig, ThreadedEngine};

    fn run(a: &[u8], b: &[u8]) -> (u32, Vec<u8>) {
        let app = LcsApp::new(a.to_vec(), b.to_vec());
        let pattern = app.pattern();
        let result = ThreadedEngine::new(
            LcsApp::new(a.to_vec(), b.to_vec()),
            pattern,
            EngineConfig::flat(2),
        )
        .run()
        .unwrap();
        (app.length(&result), app.backtrack(&result))
    }

    #[test]
    fn paper_fig1_example() {
        // Paper §IV: ABC vs DBC -> "BC".
        let (len, seq) = run(b"ABC", b"DBC");
        assert_eq!(len, 2);
        assert_eq!(seq, b"BC");
    }

    #[test]
    fn matches_serial_reference() {
        for (a, b) in [
            (b"AGCAT".as_slice(), b"GAC".as_slice()),
            (b"ABCBDAB", b"BDCABA"),
            (b"XMJYAUZ", b"MZJAWXU"),
        ] {
            let (len, seq) = run(a, b);
            assert_eq!(len, serial::lcs_len(a, b));
            // The reconstructed sequence must be a real common
            // subsequence of the right length.
            assert_eq!(seq.len() as u32, len);
            assert!(serial::is_subsequence(&seq, a));
            assert!(serial::is_subsequence(&seq, b));
        }
    }

    #[test]
    fn disjoint_alphabets_have_empty_lcs() {
        let (len, seq) = run(b"AAA", b"BBB");
        assert_eq!(len, 0);
        assert!(seq.is_empty());
    }
}

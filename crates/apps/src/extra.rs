//! Extension applications beyond the paper's four — its future work
//! ("implementing new demo applications", §X). Each exercises a
//! different corner of the pattern library:
//!
//! * [`EditDistanceApp`] — Levenshtein distance, the min-plus sibling of
//!   LCS on [`Grid3`].
//! * [`NeedlemanWunschApp`] — *global* alignment; unlike Smith-Waterman
//!   its borders are non-trivial (`−g·i`), exercising border compute.
//! * [`BandedEditDistanceApp`] — edit distance restricted to the
//!   [`BandedGrid3`] extension pattern (exact when the true distance is
//!   within the band).
//! * [`NussinovApp`] — RNA secondary-structure base-pair maximisation on
//!   the genuinely 2D/1D [`IntervalSplits`] pattern.
//! * [`MatrixChainApp`] — matrix-chain multiplication, the textbook
//!   interval-splits DP (paper Algorithm 3.2 shape).

use dpx10_core::{DepView, DpApp};
use dpx10_dag::{
    builtin::Grid3,
    extra::{BandedGrid3, IntervalSplits},
    VertexId,
};

/// Levenshtein edit distance between two byte strings.
pub struct EditDistanceApp {
    /// First string.
    pub a: Vec<u8>,
    /// Second string.
    pub b: Vec<u8>,
}

impl EditDistanceApp {
    /// Creates the app.
    pub fn new(a: Vec<u8>, b: Vec<u8>) -> Self {
        EditDistanceApp { a, b }
    }

    /// The `(|a|+1) × (|b|+1)` grid pattern.
    pub fn pattern(&self) -> Grid3 {
        Grid3::new(self.a.len() as u32 + 1, self.b.len() as u32 + 1)
    }

    /// The distance = bottom-right cell.
    pub fn answer(&self, result: &dpx10_core::DagResult<u32>) -> u32 {
        result.get(self.a.len() as u32, self.b.len() as u32)
    }
}

impl DpApp for EditDistanceApp {
    type Value = u32;

    fn compute(&self, id: VertexId, deps: &DepView<'_, u32>) -> u32 {
        let (i, j) = (id.i, id.j);
        if i == 0 {
            return j;
        }
        if j == 0 {
            return i;
        }
        let sub = deps.get(i - 1, j - 1).expect("diag")
            + (self.a[(i - 1) as usize] != self.b[(j - 1) as usize]) as u32;
        let del = deps.get(i - 1, j).expect("up") + 1;
        let ins = deps.get(i, j - 1).expect("left") + 1;
        sub.min(del).min(ins)
    }
}

/// Needleman-Wunsch global alignment score with linear gap penalty.
pub struct NeedlemanWunschApp {
    /// First sequence.
    pub a: Vec<u8>,
    /// Second sequence.
    pub b: Vec<u8>,
    /// Match score (default +1).
    pub matched: i32,
    /// Mismatch score (default −1).
    pub mismatch: i32,
    /// Gap penalty per symbol (default −1, applied as `+gap`).
    pub gap: i32,
}

impl NeedlemanWunschApp {
    /// Creates the app with +1/−1/−1 scoring.
    pub fn new(a: Vec<u8>, b: Vec<u8>) -> Self {
        NeedlemanWunschApp {
            a,
            b,
            matched: 1,
            mismatch: -1,
            gap: -1,
        }
    }

    /// The `(|a|+1) × (|b|+1)` grid pattern.
    pub fn pattern(&self) -> Grid3 {
        Grid3::new(self.a.len() as u32 + 1, self.b.len() as u32 + 1)
    }

    /// The global score = bottom-right cell.
    pub fn answer(&self, result: &dpx10_core::DagResult<i32>) -> i32 {
        result.get(self.a.len() as u32, self.b.len() as u32)
    }
}

impl DpApp for NeedlemanWunschApp {
    type Value = i32;

    fn compute(&self, id: VertexId, deps: &DepView<'_, i32>) -> i32 {
        let (i, j) = (id.i, id.j);
        if i == 0 {
            return j as i32 * self.gap;
        }
        if j == 0 {
            return i as i32 * self.gap;
        }
        let s = if self.a[(i - 1) as usize] == self.b[(j - 1) as usize] {
            self.matched
        } else {
            self.mismatch
        };
        let diag = deps.get(i - 1, j - 1).expect("diag") + s;
        let up = deps.get(i - 1, j).expect("up") + self.gap;
        let left = deps.get(i, j - 1).expect("left") + self.gap;
        diag.max(up).max(left)
    }
}

/// Edit distance on the banded pattern: missing out-of-band neighbours
/// are treated as unreachable (∞), so the result is exact whenever the
/// true distance is at most the band width.
pub struct BandedEditDistanceApp {
    /// First string.
    pub a: Vec<u8>,
    /// Second string (must be the same length: the band pattern is
    /// square).
    pub b: Vec<u8>,
    /// Band half-width.
    pub band: u32,
}

/// "Infinity" that survives +1 without wrapping.
const INF: u32 = u32::MAX / 2;

impl BandedEditDistanceApp {
    /// Creates the app; both strings must have equal length.
    pub fn new(a: Vec<u8>, b: Vec<u8>, band: u32) -> Self {
        assert_eq!(a.len(), b.len(), "banded pattern is square");
        BandedEditDistanceApp { a, b, band }
    }

    /// The banded pattern.
    pub fn pattern(&self) -> BandedGrid3 {
        BandedGrid3::new(self.a.len() as u32 + 1, self.band)
    }

    /// The (band-exact) distance.
    pub fn answer(&self, result: &dpx10_core::DagResult<u32>) -> u32 {
        result.get(self.a.len() as u32, self.b.len() as u32)
    }
}

impl DpApp for BandedEditDistanceApp {
    type Value = u32;

    fn compute(&self, id: VertexId, deps: &DepView<'_, u32>) -> u32 {
        let (i, j) = (id.i, id.j);
        if i == 0 {
            return j;
        }
        if j == 0 {
            return i;
        }
        let sub = deps
            .get(i - 1, j - 1)
            .map(|&d| d + (self.a[(i - 1) as usize] != self.b[(j - 1) as usize]) as u32)
            .unwrap_or(INF);
        let del = deps.get(i - 1, j).map(|&d| d + 1).unwrap_or(INF);
        let ins = deps.get(i, j - 1).map(|&d| d + 1).unwrap_or(INF);
        sub.min(del).min(ins)
    }
}

/// Nussinov RNA folding: maximum number of non-crossing base pairs in
/// `seq[i..=j]`, on the interval-splits pattern.
pub struct NussinovApp {
    /// RNA sequence over `AUGC`.
    pub seq: Vec<u8>,
    /// Minimum hairpin loop length (0 for the textbook recurrence).
    pub min_loop: u32,
}

impl NussinovApp {
    /// Creates the app with `min_loop = 0`.
    pub fn new(seq: Vec<u8>) -> Self {
        assert!(!seq.is_empty());
        NussinovApp { seq, min_loop: 0 }
    }

    /// Whether two bases pair (Watson-Crick + GU wobble).
    #[inline]
    pub fn pairs(a: u8, b: u8) -> bool {
        matches!(
            (a, b),
            (b'A', b'U') | (b'U', b'A') | (b'G', b'C') | (b'C', b'G') | (b'G', b'U') | (b'U', b'G')
        )
    }

    /// The interval-splits pattern over `|seq|`.
    pub fn pattern(&self) -> IntervalSplits {
        IntervalSplits::new(self.seq.len() as u32)
    }

    /// Maximum pairs over the whole sequence.
    pub fn answer(&self, result: &dpx10_core::DagResult<u32>) -> u32 {
        result.get(0, self.seq.len() as u32 - 1)
    }
}

impl DpApp for NussinovApp {
    type Value = u32;

    fn compute(&self, id: VertexId, deps: &DepView<'_, u32>) -> u32 {
        let (i, j) = (id.i, id.j);
        if j - i < 1 + self.min_loop {
            return 0;
        }
        // Split maximisation covers the "unpaired end" cases via the
        // singleton splits k = i and k = j-1.
        let mut best = 0;
        for k in i..j {
            let left = *deps.get(i, k).expect("left part");
            let right = *deps.get(k + 1, j).expect("right part");
            best = best.max(left + right);
        }
        // Pair i with j around the inner interval (i+1, j-1).
        if Self::pairs(self.seq[i as usize], self.seq[j as usize]) {
            let inner = if j >= i + 2 {
                *deps.get(i + 1, j - 1).expect("inner interval")
            } else {
                0
            };
            best = best.max(inner + 1);
        }
        best
    }
}

/// Matrix-chain multiplication: minimum scalar multiplications to
/// compute `M_i × … × M_j` where `M_k` is `dims[k] × dims[k+1]`.
pub struct MatrixChainApp {
    /// Dimension vector of length `n + 1` for `n` matrices.
    pub dims: Vec<u64>,
}

impl MatrixChainApp {
    /// Creates the app for the given dimension vector.
    pub fn new(dims: Vec<u64>) -> Self {
        assert!(dims.len() >= 2, "need at least one matrix");
        MatrixChainApp { dims }
    }

    /// Number of matrices.
    pub fn n(&self) -> u32 {
        (self.dims.len() - 1) as u32
    }

    /// The interval-splits pattern over the chain.
    pub fn pattern(&self) -> IntervalSplits {
        IntervalSplits::new(self.n())
    }

    /// The optimum for the whole chain.
    pub fn answer(&self, result: &dpx10_core::DagResult<u64>) -> u64 {
        result.get(0, self.n() - 1)
    }
}

impl DpApp for MatrixChainApp {
    type Value = u64;

    fn compute(&self, id: VertexId, deps: &DepView<'_, u64>) -> u64 {
        let (i, j) = (id.i, id.j);
        if i == j {
            return 0;
        }
        let (pi, pj1) = (self.dims[i as usize], self.dims[(j + 1) as usize]);
        (i..j)
            .map(|k| {
                let left = *deps.get(i, k).expect("left part");
                let right = *deps.get(k + 1, j).expect("right part");
                left + right + pi * self.dims[(k + 1) as usize] * pj1
            })
            .min()
            .expect("non-empty split range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial;
    use dpx10_core::{EngineConfig, ThreadedEngine};

    #[test]
    fn edit_distance_matches_serial() {
        for (a, b) in [
            (b"kitten".as_slice(), b"sitting".as_slice()),
            (b"flaw", b"lawn"),
            (b"", b"abc"),
            (b"same", b"same"),
        ] {
            let app = EditDistanceApp::new(a.to_vec(), b.to_vec());
            let pattern = app.pattern();
            let result = ThreadedEngine::new(
                EditDistanceApp::new(a.to_vec(), b.to_vec()),
                pattern,
                EngineConfig::flat(2),
            )
            .run()
            .unwrap();
            assert_eq!(app.answer(&result), serial::edit_distance(a, b));
        }
    }

    #[test]
    fn needleman_wunsch_identical_strings_score_length() {
        let app = NeedlemanWunschApp::new(b"ACGTACGT".to_vec(), b"ACGTACGT".to_vec());
        let pattern = app.pattern();
        let result = ThreadedEngine::new(
            NeedlemanWunschApp::new(b"ACGTACGT".to_vec(), b"ACGTACGT".to_vec()),
            pattern,
            EngineConfig::flat(2),
        )
        .run()
        .unwrap();
        assert_eq!(app.answer(&result), 8);
    }

    #[test]
    fn needleman_wunsch_matches_serial() {
        let (a, b) = (b"GATTACA".to_vec(), b"GCATGCU".to_vec());
        let app = NeedlemanWunschApp::new(a.clone(), b.clone());
        let pattern = app.pattern();
        let result = ThreadedEngine::new(
            NeedlemanWunschApp::new(a.clone(), b.clone()),
            pattern,
            EngineConfig::flat(3),
        )
        .run()
        .unwrap();
        assert_eq!(
            app.answer(&result),
            serial::needleman_wunsch(&a, &b, 1, -1, -1)
        );
    }

    #[test]
    fn banded_edit_distance_exact_within_band() {
        let a = b"ABCDEFGH".to_vec();
        let b = b"ABXDEFGH".to_vec(); // distance 1
        let app = BandedEditDistanceApp::new(a.clone(), b.clone(), 3);
        let pattern = app.pattern();
        let result = ThreadedEngine::new(
            BandedEditDistanceApp::new(a.clone(), b.clone(), 3),
            pattern,
            EngineConfig::flat(2),
        )
        .run()
        .unwrap();
        assert_eq!(app.answer(&result), serial::edit_distance(&a, &b));
    }

    #[test]
    fn nussinov_matches_serial() {
        for seq in [b"GGGAAAUCC".as_slice(), b"ACUCGAUUCCGAG", b"AU", b"A"] {
            let app = NussinovApp::new(seq.to_vec());
            let pattern = app.pattern();
            let result = ThreadedEngine::new(
                NussinovApp::new(seq.to_vec()),
                pattern,
                EngineConfig::flat(2),
            )
            .run()
            .unwrap();
            assert_eq!(
                app.answer(&result),
                serial::nussinov(seq),
                "{:?}",
                std::str::from_utf8(seq)
            );
        }
    }

    #[test]
    fn matrix_chain_textbook_case() {
        // CLRS: dims [30,35,15,5,10,20,25] -> 15125.
        let dims = vec![30u64, 35, 15, 5, 10, 20, 25];
        let app = MatrixChainApp::new(dims.clone());
        let pattern = app.pattern();
        let result = ThreadedEngine::new(
            MatrixChainApp::new(dims.clone()),
            pattern,
            EngineConfig::flat(2),
        )
        .run()
        .unwrap();
        assert_eq!(app.answer(&result), 15125);
        assert_eq!(app.answer(&result), serial::matrix_chain(&dims));
    }

    #[test]
    fn matrix_chain_single_matrix_is_free() {
        let app = MatrixChainApp::new(vec![4, 7]);
        let pattern = app.pattern();
        let result = ThreadedEngine::new(
            MatrixChainApp::new(vec![4, 7]),
            pattern,
            EngineConfig::flat(1),
        )
        .run()
        .unwrap();
        assert_eq!(app.answer(&result), 0);
    }
}

//! The Manhattan Tourists Problem (paper §VIII).
//!
//! `D(i,j) = max(D(i-1,j) + w(i-1,j,i,j), D(i,j-1) + w(i,j-1,i,j))` over
//! a grid of edge weights — the pure two-parent pattern of Fig. 5 (a).
//! Edge weights are generated on the fly from a seeded coordinate hash,
//! so a billion-vertex instance needs no stored weight matrix and every
//! run (and the serial oracle) sees identical weights.

use dpx10_core::{DepView, DpApp};
use dpx10_dag::{builtin::Grid2, VertexId};

/// Deterministic per-edge weight in `0..64`.
#[inline]
pub fn edge_weight(seed: u64, from_i: u32, from_j: u32, to_i: u32, to_j: u32) -> i64 {
    let mut x = seed
        ^ ((from_i as u64) << 48)
        ^ ((from_j as u64) << 32)
        ^ ((to_i as u64) << 16)
        ^ to_j as u64;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((x ^ (x >> 31)) % 64) as i64
}

/// The MTP application over an `h × w` street grid.
pub struct MtpApp {
    /// Grid height.
    pub height: u32,
    /// Grid width.
    pub width: u32,
    /// Weight-stream seed.
    pub seed: u64,
}

impl MtpApp {
    /// Creates the app.
    pub fn new(height: u32, width: u32, seed: u64) -> Self {
        assert!(height > 0 && width > 0);
        MtpApp {
            height,
            width,
            seed,
        }
    }

    /// The Fig. 5 (a) pattern at this size.
    pub fn pattern(&self) -> Grid2 {
        Grid2::new(self.height, self.width)
    }
}

impl DpApp for MtpApp {
    type Value = i64;

    fn compute(&self, id: VertexId, deps: &DepView<'_, i64>) -> i64 {
        let (i, j) = (id.i, id.j);
        let mut best = i64::MIN;
        if i > 0 {
            let w = edge_weight(self.seed, i - 1, j, i, j);
            best = best.max(deps.get(i - 1, j).expect("top dep") + w);
        }
        if j > 0 {
            let w = edge_weight(self.seed, i, j - 1, i, j);
            best = best.max(deps.get(i, j - 1).expect("left dep") + w);
        }
        if best == i64::MIN {
            0 // the source corner
        } else {
            best
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial;
    use dpx10_core::{DistKind, EngineConfig, ThreadedEngine};

    #[test]
    fn weights_deterministic_and_bounded() {
        let a = edge_weight(42, 1, 2, 1, 3);
        let b = edge_weight(42, 1, 2, 1, 3);
        assert_eq!(a, b);
        for i in 0..20 {
            for j in 0..20 {
                let w = edge_weight(7, i, j, i + 1, j);
                assert!((0..64).contains(&w));
            }
        }
    }

    #[test]
    fn seed_changes_weights() {
        let distinct = (0..100)
            .map(|s| edge_weight(s, 3, 4, 3, 5))
            .collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 10);
    }

    #[test]
    fn matches_serial_reference() {
        let app = MtpApp::new(12, 9, 0xDEAD_BEEF);
        let expect = serial::manhattan_tourist(12, 9, 0xDEAD_BEEF);
        let pattern = app.pattern();
        let result = ThreadedEngine::new(
            app,
            pattern,
            EngineConfig::flat(3).with_dist(DistKind::BlockRow),
        )
        .run()
        .unwrap();
        for i in 0..12 {
            for j in 0..9 {
                assert_eq!(
                    result.get(i, j),
                    expect[i as usize][j as usize],
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn monotone_along_any_path() {
        // Weights are non-negative, so D never decreases along an edge.
        let app = MtpApp::new(8, 8, 3);
        let pattern = app.pattern();
        let result = ThreadedEngine::new(app, pattern, EngineConfig::flat(2))
            .run()
            .unwrap();
        for i in 1..8 {
            for j in 0..8 {
                assert!(result.get(i, j) >= result.get(i - 1, j));
            }
        }
    }
}

//! Serial reference implementations — the oracles the distributed
//! engines are differentially tested against, and the "serial version"
//! the paper compares line counts with (§I).

use crate::knapsack::Item;
use crate::mtp::edge_weight;
use crate::swlag::Scoring;

/// Full Smith-Waterman H matrix with a linear gap penalty.
pub fn smith_waterman_linear(a: &[u8], b: &[u8], sc: &Scoring) -> Vec<Vec<i32>> {
    let (m, n) = (a.len(), b.len());
    let mut h = vec![vec![0i32; n + 1]; m + 1];
    for i in 1..=m {
        for j in 1..=n {
            let s = sc.similarity(a[i - 1], b[j - 1]);
            h[i][j] = 0
                .max(h[i - 1][j - 1] + s)
                .max(h[i - 1][j] + sc.gap_open)
                .max(h[i][j - 1] + sc.gap_open);
        }
    }
    h
}

/// Full Gotoh (affine-gap) H matrix.
pub fn smith_waterman_affine(a: &[u8], b: &[u8], sc: &Scoring) -> Vec<Vec<i32>> {
    const NEG_INF: i32 = i32::MIN / 4;
    let (m, n) = (a.len(), b.len());
    let mut h = vec![vec![0i32; n + 1]; m + 1];
    let mut e = vec![vec![NEG_INF; n + 1]; m + 1];
    let mut f = vec![vec![NEG_INF; n + 1]; m + 1];
    for i in 1..=m {
        for j in 1..=n {
            e[i][j] = (h[i][j - 1] + sc.gap_open).max(e[i][j - 1] + sc.gap_extend);
            f[i][j] = (h[i - 1][j] + sc.gap_open).max(f[i - 1][j] + sc.gap_extend);
            let s = sc.similarity(a[i - 1], b[j - 1]);
            h[i][j] = 0.max(h[i - 1][j - 1] + s).max(e[i][j]).max(f[i][j]);
        }
    }
    h
}

/// Full Manhattan-Tourist matrix with the same hashed edge weights as
/// [`crate::MtpApp`].
pub fn manhattan_tourist(height: u32, width: u32, seed: u64) -> Vec<Vec<i64>> {
    let mut d = vec![vec![0i64; width as usize]; height as usize];
    for i in 0..height {
        for j in 0..width {
            if i == 0 && j == 0 {
                continue;
            }
            let mut best = i64::MIN;
            if i > 0 {
                best =
                    best.max(d[(i - 1) as usize][j as usize] + edge_weight(seed, i - 1, j, i, j));
            }
            if j > 0 {
                best =
                    best.max(d[i as usize][(j - 1) as usize] + edge_weight(seed, i, j - 1, i, j));
            }
            d[i as usize][j as usize] = best;
        }
    }
    d
}

/// Longest palindromic subsequence length.
pub fn lps(text: &[u8]) -> u32 {
    let n = text.len();
    let mut d = vec![vec![0u32; n]; n];
    for i in (0..n).rev() {
        d[i][i] = 1;
        for j in i + 1..n {
            d[i][j] = if text[i] == text[j] {
                if j == i + 1 {
                    2
                } else {
                    d[i + 1][j - 1] + 2
                }
            } else {
                d[i + 1][j].max(d[i][j - 1])
            };
        }
    }
    if n == 0 {
        0
    } else {
        d[0][n - 1]
    }
}

/// 0/1-Knapsack optimum.
pub fn knapsack(items: &[Item], capacity: u32) -> u64 {
    let mut row = vec![0u64; capacity as usize + 1];
    for item in items {
        for j in (item.weight..=capacity).rev() {
            row[j as usize] = row[j as usize].max(row[(j - item.weight) as usize] + item.value);
        }
    }
    row[capacity as usize]
}

/// LCS length.
pub fn lcs_len(a: &[u8], b: &[u8]) -> u32 {
    let (m, n) = (a.len(), b.len());
    let mut f = vec![vec![0u32; n + 1]; m + 1];
    for i in 1..=m {
        for j in 1..=n {
            f[i][j] = if a[i - 1] == b[j - 1] {
                f[i - 1][j - 1] + 1
            } else {
                f[i - 1][j].max(f[i][j - 1])
            };
        }
    }
    f[m][n]
}

/// Whether `needle` is a subsequence of `haystack`.
pub fn is_subsequence(needle: &[u8], haystack: &[u8]) -> bool {
    let mut it = haystack.iter();
    needle.iter().all(|c| it.any(|h| h == c))
}

/// Levenshtein edit distance.
pub fn edit_distance(a: &[u8], b: &[u8]) -> u32 {
    let (m, n) = (a.len(), b.len());
    let mut prev: Vec<u32> = (0..=n as u32).collect();
    let mut cur = vec![0u32; n + 1];
    for i in 1..=m {
        cur[0] = i as u32;
        for j in 1..=n {
            let sub = prev[j - 1] + (a[i - 1] != b[j - 1]) as u32;
            cur[j] = sub.min(prev[j] + 1).min(cur[j - 1] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n]
}

/// Needleman-Wunsch global alignment score.
pub fn needleman_wunsch(a: &[u8], b: &[u8], matched: i32, mismatch: i32, gap: i32) -> i32 {
    let (m, n) = (a.len(), b.len());
    let mut prev: Vec<i32> = (0..=n as i32).map(|j| j * gap).collect();
    let mut cur = vec![0i32; n + 1];
    for i in 1..=m {
        cur[0] = i as i32 * gap;
        for j in 1..=n {
            let s = if a[i - 1] == b[j - 1] {
                matched
            } else {
                mismatch
            };
            cur[j] = (prev[j - 1] + s).max(prev[j] + gap).max(cur[j - 1] + gap);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n]
}

/// Nussinov base-pair maximisation (Watson-Crick + GU wobble, no
/// minimum loop).
pub fn nussinov(seq: &[u8]) -> u32 {
    use crate::extra::NussinovApp;
    let n = seq.len();
    let mut d = vec![vec![0u32; n]; n];
    for len in 1..n {
        for i in 0..n - len {
            let j = i + len;
            let mut best = 0;
            for k in i..j {
                best = best.max(d[i][k] + d[k + 1][j]);
            }
            if NussinovApp::pairs(seq[i], seq[j]) {
                let inner = if j >= i + 2 { d[i + 1][j - 1] } else { 0 };
                best = best.max(inner + 1);
            }
            d[i][j] = best;
        }
    }
    d[0][n - 1]
}

/// Least-Weight Subsequence table over the hashed decomposable weights
/// of [`crate::LwsApp`] — the brute O(n²) fold, no prefix aggregation.
pub fn lws(n: u32, seed: u64) -> Vec<u32> {
    use crate::lws::{f_weight, g_weight};
    let mut d = vec![0u32; n as usize];
    for j in 1..n {
        let best = (0..j)
            .map(|i| u64::from(d[i as usize]) + u64::from(f_weight(seed, i)))
            .min()
            .unwrap();
        d[j as usize] = (u64::from(g_weight(seed, j)) + best) as u32;
    }
    d
}

/// GAP table over the hashed decomposable penalties of
/// [`crate::GapApp`] — the brute O(hw·(h+w)) triple fold.
pub fn gap(h: u32, w: u32, seed: u64) -> Vec<Vec<u32>> {
    use crate::gap::{col_close, col_open, row_close, row_open, sub_cost};
    let mut g = vec![vec![0u32; w as usize]; h as usize];
    for i in 0..h {
        for j in 0..w {
            if i == 0 && j == 0 {
                continue;
            }
            let mut best = u64::MAX;
            if i > 0 && j > 0 {
                best = u64::from(g[(i - 1) as usize][(j - 1) as usize])
                    + u64::from(sub_cost(seed, i, j));
            }
            if j > 0 {
                let row = (0..j)
                    .map(|q| u64::from(g[i as usize][q as usize]) + u64::from(row_open(seed, q)))
                    .min()
                    .unwrap();
                best = best.min(u64::from(row_close(seed, j)) + row);
            }
            if i > 0 {
                let col = (0..i)
                    .map(|p| u64::from(g[p as usize][j as usize]) + u64::from(col_open(seed, p)))
                    .min()
                    .unwrap();
                best = best.min(u64::from(col_close(seed, i)) + col);
            }
            g[i as usize][j as usize] = best as u32;
        }
    }
    g
}

/// Matrix-chain multiplication optimum over `dims`.
pub fn matrix_chain(dims: &[u64]) -> u64 {
    let n = dims.len() - 1;
    let mut d = vec![vec![0u64; n]; n];
    for len in 1..n {
        for i in 0..n - len {
            let j = i + len;
            d[i][j] = (i..j)
                .map(|k| d[i][k] + d[k + 1][j] + dims[i] * dims[k + 1] * dims[j + 1])
                .min()
                .unwrap();
        }
    }
    d[0][n - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sw_linear_known_alignment() {
        // Classic example: GGTTGACTA vs TGTTACGG peaks at 13 with
        // +3/−3/−2 scoring; with our +2/−1/−1 default just check
        // non-negativity and a self-alignment.
        let h = smith_waterman_linear(b"ACGT", b"ACGT", &Scoring::default());
        assert_eq!(h[4][4], 8);
        assert!(h.iter().flatten().all(|&v| v >= 0));
    }

    #[test]
    fn affine_never_beats_linear_with_equal_penalties() {
        // With gap_extend == gap_open the two models coincide.
        let sc = Scoring {
            matched: 2,
            mismatch: -1,
            gap_open: -1,
            gap_extend: -1,
        };
        let a = b"GATTACA";
        let b = b"GCATGCU";
        let lin = smith_waterman_linear(a, b, &sc);
        let aff = smith_waterman_affine(a, b, &sc);
        assert_eq!(lin, aff);
    }

    #[test]
    fn lps_base_cases() {
        assert_eq!(lps(b"A"), 1);
        assert_eq!(lps(b"AB"), 1);
        assert_eq!(lps(b"ABA"), 3);
        assert_eq!(lps(b"BBABCBCAB"), 7);
    }

    #[test]
    fn knapsack_greedy_trap() {
        // Greedy-by-value would take the 10; DP must take 6+5.
        let items = [
            Item {
                weight: 5,
                value: 10,
            },
            Item {
                weight: 3,
                value: 6,
            },
            Item {
                weight: 3,
                value: 5,
            },
        ];
        assert_eq!(knapsack(&items, 6), 11);
    }

    #[test]
    fn subsequence_checks() {
        assert!(is_subsequence(b"ACE", b"ABCDE"));
        assert!(!is_subsequence(b"AEC", b"ABCDE"));
        assert!(is_subsequence(b"", b"X"));
    }

    #[test]
    fn mtp_source_is_zero() {
        let d = manhattan_tourist(5, 5, 1);
        assert_eq!(d[0][0], 0);
        assert!(d[4][4] > 0);
    }
}

//! Smith-Waterman local alignment: the paper's §VII-A demo (linear gap)
//! and the SWLAG evaluation application (linear *and* affine gap, §VIII).

use dpx10_apgas::Codec;
use dpx10_core::{DepView, DpApp};
use dpx10_dag::{builtin::Grid3, VertexId};

/// Match/mismatch/gap scores (paper §VII-A: +2 / −1 / −1).
#[derive(Clone, Copy, Debug)]
pub struct Scoring {
    /// Score when characters match.
    pub matched: i32,
    /// Score when they differ.
    pub mismatch: i32,
    /// Linear gap penalty (also the affine model's gap-open).
    pub gap_open: i32,
    /// Affine gap-extension penalty.
    pub gap_extend: i32,
}

impl Default for Scoring {
    fn default() -> Self {
        Scoring {
            matched: 2,
            mismatch: -1,
            gap_open: -1,
            gap_extend: -1,
        }
    }
}

impl Scoring {
    /// The similarity function `s(a, b)`.
    #[inline]
    pub fn similarity(&self, a: u8, b: u8) -> i32 {
        if a == b {
            self.matched
        } else {
            self.mismatch
        }
    }
}

/// The paper's Fig. 7 application: Smith-Waterman with a linear gap
/// penalty, one `Int` per vertex.
pub struct SwLinearApp {
    /// First sequence.
    pub a: Vec<u8>,
    /// Second sequence.
    pub b: Vec<u8>,
    /// Scores.
    pub scoring: Scoring,
}

impl SwLinearApp {
    /// Creates the app; run it over [`SwLinearApp::pattern`].
    pub fn new(a: Vec<u8>, b: Vec<u8>) -> Self {
        SwLinearApp {
            a,
            b,
            scoring: Scoring::default(),
        }
    }

    /// The `(|a|+1) × (|b|+1)` LCS-shaped DAG (paper Fig. 5 (b)).
    pub fn pattern(&self) -> Grid3 {
        Grid3::new(self.a.len() as u32 + 1, self.b.len() as u32 + 1)
    }
}

impl DpApp for SwLinearApp {
    type Value = i32;

    fn compute(&self, id: VertexId, deps: &DepView<'_, i32>) -> i32 {
        let (i, j) = (id.i, id.j);
        if i == 0 || j == 0 {
            return 0;
        }
        let s = self
            .scoring
            .similarity(self.a[(i - 1) as usize], self.b[(j - 1) as usize]);
        let diag = deps.get(i - 1, j - 1).expect("diag dep") + s;
        let up = deps.get(i - 1, j).expect("up dep") + self.scoring.gap_open;
        let left = deps.get(i, j - 1).expect("left dep") + self.scoring.gap_open;
        0.max(diag).max(up).max(left)
    }
}

/// One cell of the affine-gap (Gotoh) recurrence: the three interleaved
/// matrices `H` (best score), `E` (gap in `a`), `F` (gap in `b`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SwCell {
    /// Best local-alignment score ending at this cell.
    pub h: i32,
    /// Best score ending in a gap along the second sequence.
    pub e: i32,
    /// Best score ending in a gap along the first sequence.
    pub f: i32,
}

impl Codec for SwCell {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.h.encode(buf);
        self.e.encode(buf);
        self.f.encode(buf);
    }

    fn decode(src: &mut &[u8]) -> Option<Self> {
        Some(SwCell {
            h: i32::decode(src)?,
            e: i32::decode(src)?,
            f: i32::decode(src)?,
        })
    }

    fn wire_size(&self) -> usize {
        12
    }
}

/// SWLAG: Smith-Waterman with **l**inear **a**nd affine **g**ap penalty —
/// the paper's headline evaluation app. Each vertex computes the Gotoh
/// triple, so its per-vertex work is ~1.5× the linear variant's (the cost
/// model in `dpx10-sim` prices it accordingly).
pub struct SwlagApp {
    /// First sequence.
    pub a: Vec<u8>,
    /// Second sequence.
    pub b: Vec<u8>,
    /// Scores (gap_open for opening, gap_extend for extending).
    pub scoring: Scoring,
}

/// "Minus infinity" that survives adding penalties without wrapping.
const NEG_INF: i32 = i32::MIN / 4;

impl SwlagApp {
    /// Creates the app with default scoring.
    pub fn new(a: Vec<u8>, b: Vec<u8>) -> Self {
        SwlagApp {
            a,
            b,
            scoring: Scoring {
                gap_open: -2,
                gap_extend: -1,
                ..Scoring::default()
            },
        }
    }

    /// The `(|a|+1) × (|b|+1)` DAG (paper Fig. 5 (b)).
    pub fn pattern(&self) -> Grid3 {
        Grid3::new(self.a.len() as u32 + 1, self.b.len() as u32 + 1)
    }
}

impl DpApp for SwlagApp {
    type Value = SwCell;

    fn compute(&self, id: VertexId, deps: &DepView<'_, SwCell>) -> SwCell {
        let (i, j) = (id.i, id.j);
        if i == 0 || j == 0 {
            return SwCell {
                h: 0,
                e: NEG_INF,
                f: NEG_INF,
            };
        }
        let sc = &self.scoring;
        let left = deps.get(i, j - 1).expect("left dep");
        let up = deps.get(i - 1, j).expect("up dep");
        let diag = deps.get(i - 1, j - 1).expect("diag dep");
        let e = (left.h + sc.gap_open).max(left.e + sc.gap_extend);
        let f = (up.h + sc.gap_open).max(up.f + sc.gap_extend);
        let s = sc.similarity(self.a[(i - 1) as usize], self.b[(j - 1) as usize]);
        let h = 0.max(diag.h + s).max(e).max(f);
        SwCell { h, e, f }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial;
    use dpx10_core::{EngineConfig, ThreadedEngine};

    #[test]
    fn linear_matches_paper_walkthrough_scale() {
        // Identical strings: score grows by +2 along the diagonal.
        let app = SwLinearApp::new(b"ACGT".to_vec(), b"ACGT".to_vec());
        let pattern = app.pattern();
        let result = ThreadedEngine::new(app, pattern, EngineConfig::flat(2))
            .run()
            .unwrap();
        assert_eq!(result.get(4, 4), 8);
    }

    #[test]
    fn linear_matches_serial_reference() {
        let (a, b) = (b"GGTTGACTA".to_vec(), b"TGTTACGG".to_vec());
        let expect = serial::smith_waterman_linear(&a, &b, &Scoring::default());
        let app = SwLinearApp::new(a, b);
        let pattern = app.pattern();
        let result = ThreadedEngine::new(app, pattern, EngineConfig::flat(3))
            .run()
            .unwrap();
        for (i, row) in expect.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(result.get(i as u32, j as u32), v, "H[{i}][{j}]");
            }
        }
    }

    #[test]
    fn affine_matches_serial_reference() {
        let (a, b) = (b"CTTAGCTAGCAT".to_vec(), b"TTAAGGCAT".to_vec());
        let app = SwlagApp::new(a.clone(), b.clone());
        let expect = serial::smith_waterman_affine(&a, &b, &app.scoring);
        let pattern = app.pattern();
        let result = ThreadedEngine::new(app, pattern, EngineConfig::flat(2))
            .run()
            .unwrap();
        for i in 0..=a.len() as u32 {
            for j in 0..=b.len() as u32 {
                assert_eq!(
                    result.get(i, j).h,
                    expect[i as usize][j as usize],
                    "H[{i}][{j}]"
                );
            }
        }
    }

    #[test]
    fn affine_penalises_gap_opens_more_than_extends() {
        // One long gap should beat two short gaps with affine scoring.
        let app = SwlagApp::new(b"AAAATTTTAAAA".to_vec(), b"AAAAAAAA".to_vec());
        let pattern = app.pattern();
        let result = ThreadedEngine::new(app, pattern, EngineConfig::flat(1))
            .run()
            .unwrap();
        let best = (0..=12)
            .flat_map(|i| (0..=8).map(move |j| (i, j)))
            .map(|(i, j)| result.get(i, j).h)
            .max()
            .unwrap();
        // 8 matches (+16) − open (−2) − 3 extends (−3) = 11.
        assert_eq!(best, 11);
    }

    #[test]
    fn swcell_codec_round_trips() {
        let cell = SwCell { h: 5, e: -3, f: 0 };
        let mut buf = Vec::new();
        cell.encode(&mut buf);
        assert_eq!(buf.len(), cell.wire_size());
        let mut src = buf.as_slice();
        assert_eq!(SwCell::decode(&mut src), Some(cell));
    }
}

//! A tiny seeded PRNG for workload generation.
//!
//! SplitMix64 (Steele et al., "Fast splittable pseudorandom number
//! generators") — a 64-bit state, statistically solid for test-data
//! generation, and dependency-free so the workspace builds offline.
//! Workloads only need determinism per seed, not cryptographic quality.

/// SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "SplitMix64::below(0)");
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_range_and_varies() {
        let mut rng = SplitMix64::new(7);
        let draws: Vec<u64> = (0..1000).map(|_| rng.below(10)).collect();
        assert!(draws.iter().all(|&d| d < 10));
        for v in 0..10 {
            assert!(draws.contains(&v), "value {v} never drawn");
        }
    }
}

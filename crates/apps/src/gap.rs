//! The GAP problem — 2-D edit distance with general (decomposable) gap
//! penalties, the paper-family's canonical doubly-nested dataflow:
//!
//! ```text
//! G[0][0] = 0
//! G[i][j] = min( G[i-1][j-1] + s(i, j),               (diagonal point)
//!                g1(j) + min_{q<j}( G[i][q] + f1(q) ), (row interval)
//!                g2(i) + min_{p<i}( G[p][j] + f2(p) )  (column interval) )
//! ```
//!
//! A cell reads one point dependency plus two full prefixes — O(i + j)
//! values when enumerated. With per-row and per-column `Min` lanes the
//! ranged path answers both interval terms in O(1), leaving only the
//! diagonal point to gather.

use dpx10_core::{AggView, DepView, DpApp};
use dpx10_dag::{AggSpec, Axis, GapDag, RangedDag, Reduction, VertexId};

fn mix(seed: u64, tag: u64, x: u64) -> u64 {
    let mut z =
        seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Substitution cost `s(i, j)` for the diagonal step into `(i, j)`.
pub fn sub_cost(seed: u64, i: u32, j: u32) -> u32 {
    (mix(seed, 3, (u64::from(i) << 32) | u64::from(j)) % 1000) as u32
}

/// Row-gap departure component `f1(q)`.
pub fn row_open(seed: u64, q: u32) -> u32 {
    (mix(seed, 4, u64::from(q)) % 1000) as u32
}

/// Row-gap arrival component `g1(j)`.
pub fn row_close(seed: u64, j: u32) -> u32 {
    (mix(seed, 5, u64::from(j)) % 1000) as u32
}

/// Column-gap departure component `f2(p)`.
pub fn col_open(seed: u64, p: u32) -> u32 {
    (mix(seed, 6, u64::from(p)) % 1000) as u32
}

/// Column-gap arrival component `g2(i)`.
pub fn col_close(seed: u64, i: u32) -> u32 {
    (mix(seed, 7, u64::from(i)) % 1000) as u32
}

/// The GAP application over a seeded decomposable penalty table.
#[derive(Clone, Copy, Debug)]
pub struct GapApp {
    /// Table height.
    pub h: u32,
    /// Table width.
    pub w: u32,
    /// Penalty-table seed.
    pub seed: u64,
}

impl GapApp {
    /// Creates the app for an `h × w` table.
    pub fn new(h: u32, w: u32, seed: u64) -> Self {
        assert!(h > 0 && w > 0);
        GapApp { h, w, seed }
    }

    /// The `h × w` interval pattern wrapped for any engine.
    pub fn pattern(&self) -> RangedDag {
        RangedDag::new(GapDag::new(self.h, self.w))
    }

    /// The recurrence's answer `G[h-1][w-1]` from a finished result.
    pub fn answer(&self, result: &dpx10_core::DagResult<u32>) -> u32 {
        result.get(self.h - 1, self.w - 1)
    }
}

impl DpApp for GapApp {
    type Value = u32;

    fn compute(&self, id: VertexId, deps: &DepView<'_, u32>) -> u32 {
        let (i, j) = (id.i, id.j);
        if i == 0 && j == 0 {
            return 0;
        }
        // Enumerated path: classify each predecessor by which term of
        // the recurrence it feeds. The diagonal is the only dep with
        // both coordinates different.
        let mut row_best = u64::MAX;
        let mut col_best = u64::MAX;
        let mut diag = None;
        for (d, &v) in deps.iter() {
            if d.i == i {
                row_best = row_best.min(u64::from(v) + u64::from(row_open(self.seed, d.j)));
            } else if d.j == j {
                col_best = col_best.min(u64::from(v) + u64::from(col_open(self.seed, d.i)));
            } else {
                diag = Some(u64::from(v) + u64::from(sub_cost(self.seed, i, j)));
            }
        }
        let mut best = diag.unwrap_or(u64::MAX);
        if row_best != u64::MAX {
            best = best.min(u64::from(row_close(self.seed, j)) + row_best);
        }
        if col_best != u64::MAX {
            best = best.min(u64::from(col_close(self.seed, i)) + col_best);
        }
        best as u32
    }

    fn agg_spec(&self) -> Option<AggSpec> {
        Some(AggSpec::both(Reduction::Min))
    }

    fn agg_key(&self, axis: Axis, id: VertexId, value: &u32) -> i64 {
        match axis {
            Axis::Row => i64::from(*value) + i64::from(row_open(self.seed, id.j)),
            Axis::Col => i64::from(*value) + i64::from(col_open(self.seed, id.i)),
        }
    }

    fn compute_ranged(&self, id: VertexId, points: &DepView<'_, u32>, aggs: &AggView<'_>) -> u32 {
        let (i, j) = (id.i, id.j);
        if i == 0 && j == 0 {
            return 0;
        }
        let mut best = if i > 0 && j > 0 {
            u64::from(*points.get(i - 1, j - 1).expect("diagonal point dep"))
                + u64::from(sub_cost(self.seed, i, j))
        } else {
            u64::MAX
        };
        // Both interval terms are O(1) lane lookups.
        if j > 0 {
            let row = u64::from(row_close(self.seed, j)) + aggs.row_prefix(i, j) as u64;
            best = best.min(row);
        }
        if i > 0 {
            let col = u64::from(col_close(self.seed, i)) + aggs.col_prefix(j, i) as u64;
            best = best.min(col);
        }
        best as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial;
    use dpx10_core::{EngineConfig, ThreadedEngine};

    fn run(h: u32, w: u32, seed: u64, cfg: EngineConfig) -> dpx10_core::DagResult<u32> {
        let app = GapApp::new(h, w, seed);
        ThreadedEngine::new(app, app.pattern(), cfg).run().unwrap()
    }

    fn check(result: &dpx10_core::DagResult<u32>, want: &[Vec<u32>]) {
        for (i, row) in want.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(result.get(i as u32, j as u32), v, "cell ({i},{j})");
            }
        }
    }

    #[test]
    fn aggregated_matches_serial() {
        for seed in [2, 99, 31415] {
            let want = serial::gap(13, 17, seed);
            let result = run(13, 17, seed, EngineConfig::flat(3));
            check(&result, &want);
        }
    }

    #[test]
    fn enumerated_matches_serial() {
        let want = serial::gap(11, 9, 8);
        let result = run(11, 9, 8, EngineConfig::flat(2).with_aggregation(false));
        check(&result, &want);
    }

    #[test]
    fn starved_cache_still_correct() {
        let want = serial::gap(16, 16, 4);
        let result = run(16, 16, 4, EngineConfig::flat(4).with_cache(2));
        check(&result, &want);
    }

    #[test]
    fn degenerate_single_row_and_column() {
        check(
            &run(1, 12, 6, EngineConfig::flat(2)),
            &serial::gap(1, 12, 6),
        );
        check(
            &run(12, 1, 6, EngineConfig::flat(2)),
            &serial::gap(12, 1, 6),
        );
    }
}

//! The 0/1 Knapsack Problem (paper §VII-B and §VIII).
//!
//! `m(i,j) = m(i-1,j)` if `w_i > j`, else
//! `max(m(i-1,j), m(i-1, j-w_i) + v_i)` — Equation (2) — over the
//! data-dependent [`KnapsackDag`] of Fig. 8.

use dpx10_core::{DepView, DpApp};
use dpx10_dag::{KnapsackDag, VertexId};

/// One item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Item {
    /// Item weight (strictly positive).
    pub weight: u32,
    /// Item value.
    pub value: u64,
}

/// The 0/1-Knapsack application.
pub struct KnapsackApp {
    /// The item set (1-based in the recurrence: item `i` is
    /// `items[i-1]`).
    pub items: Vec<Item>,
    /// Knapsack capacity `W`.
    pub capacity: u32,
}

impl KnapsackApp {
    /// Creates the app.
    pub fn new(items: Vec<Item>, capacity: u32) -> Self {
        assert!(!items.is_empty());
        assert!(items.iter().all(|it| it.weight > 0));
        KnapsackApp { items, capacity }
    }

    /// The data-dependent DAG pattern for this instance (paper Fig. 8).
    pub fn pattern(&self) -> KnapsackDag {
        KnapsackDag::new(
            self.items.iter().map(|it| it.weight).collect(),
            self.capacity,
        )
    }

    /// The optimum = `m(n, W)`.
    pub fn answer(&self, result: &dpx10_core::DagResult<u64>) -> u64 {
        result.get(self.items.len() as u32, self.capacity)
    }
}

impl DpApp for KnapsackApp {
    type Value = u64;

    fn compute(&self, id: VertexId, deps: &DepView<'_, u64>) -> u64 {
        let (i, j) = (id.i, id.j);
        if i == 0 {
            return 0;
        }
        let item = self.items[(i - 1) as usize];
        let skip = *deps.get(i - 1, j).expect("skip dep");
        if item.weight <= j {
            let take = deps.get(i - 1, j - item.weight).expect("take dep") + item.value;
            skip.max(take)
        } else {
            skip
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial;
    use dpx10_core::{DistKind, EngineConfig, ThreadedEngine};

    fn solve(items: Vec<Item>, capacity: u32) -> u64 {
        let app = KnapsackApp::new(items.clone(), capacity);
        let pattern = app.pattern();
        let n = items.len() as u32;
        let result = ThreadedEngine::new(
            app,
            pattern,
            EngineConfig::flat(2).with_dist(DistKind::BlockRow),
        )
        .run()
        .unwrap();
        result.get(n, capacity)
    }

    #[test]
    fn textbook_instance() {
        // Items (w, v): (1,1), (3,4), (4,5), (5,7); W=7 -> best 9.
        let items = vec![
            Item {
                weight: 1,
                value: 1,
            },
            Item {
                weight: 3,
                value: 4,
            },
            Item {
                weight: 4,
                value: 5,
            },
            Item {
                weight: 5,
                value: 7,
            },
        ];
        assert_eq!(solve(items, 7), 9);
    }

    #[test]
    fn matches_serial_reference() {
        let items = vec![
            Item {
                weight: 2,
                value: 3,
            },
            Item {
                weight: 3,
                value: 4,
            },
            Item {
                weight: 4,
                value: 5,
            },
            Item {
                weight: 5,
                value: 6,
            },
            Item {
                weight: 1,
                value: 1,
            },
        ];
        for cap in [0u32, 1, 5, 9, 15] {
            assert_eq!(
                solve(items.clone(), cap),
                serial::knapsack(&items, cap),
                "capacity {cap}"
            );
        }
    }

    #[test]
    fn zero_capacity_takes_nothing() {
        let items = vec![Item {
            weight: 2,
            value: 10,
        }];
        assert_eq!(solve(items, 0), 0);
    }

    #[test]
    fn all_items_fit() {
        let items = vec![
            Item {
                weight: 1,
                value: 2,
            },
            Item {
                weight: 1,
                value: 3,
            },
        ];
        assert_eq!(solve(items, 10), 5);
    }
}

//! Least-Weight Subsequence — the 1-D/1-D nested-dataflow recurrence
//! (`D[j] = min_{i<j}(D[i] + w(i, j))`, `D[0] = 0`) over a decomposable
//! weight `w(i, j) = f(i) + g(j)`.
//!
//! This is the smallest member of the DP class the ROADMAP calls
//! "nested-dataflow workloads": every cell reads *all* of its
//! predecessors, so an enumerated engine gathers O(n) values per cell,
//! while the prefix-aggregated path keeps one running `min` of
//! `D[i] + f(i)` per place and answers each cell in O(1). Both paths
//! must produce identical tables — the differential harness holds them
//! to that.

use dpx10_core::{AggView, DepView, DpApp};
use dpx10_dag::{AggSpec, Axis, LwsDag, RangedDag, Reduction, VertexId};

/// Stateless splitmix-style hash: the weight tables are pure functions
/// of `(seed, tag, x)`, so apps, oracles and remote places all agree
/// without shipping any table.
fn mix(seed: u64, tag: u64, x: u64) -> u64 {
    let mut z =
        seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The departure-side weight component `f(i)`, in `0..1000`.
pub fn f_weight(seed: u64, i: u32) -> u32 {
    (mix(seed, 1, u64::from(i)) % 1000) as u32
}

/// The arrival-side weight component `g(j)`, in `0..1000`.
pub fn g_weight(seed: u64, j: u32) -> u32 {
    (mix(seed, 2, u64::from(j)) % 1000) as u32
}

/// The LWS application over a seeded decomposable weight table.
#[derive(Clone, Copy, Debug)]
pub struct LwsApp {
    /// Number of positions (cells of the single-row DAG).
    pub n: u32,
    /// Weight-table seed.
    pub seed: u64,
}

impl LwsApp {
    /// Creates the app for `n` positions.
    pub fn new(n: u32, seed: u64) -> Self {
        assert!(n > 0);
        LwsApp { n, seed }
    }

    /// The `1 × n` interval pattern wrapped for any engine.
    pub fn pattern(&self) -> RangedDag {
        RangedDag::new(LwsDag::new(self.n))
    }

    /// The recurrence's answer `D[n-1]` from a finished result.
    pub fn answer(&self, result: &dpx10_core::DagResult<u32>) -> u32 {
        result.get(0, self.n - 1)
    }
}

impl DpApp for LwsApp {
    type Value = u32;

    fn compute(&self, id: VertexId, deps: &DepView<'_, u32>) -> u32 {
        let j = id.j;
        if j == 0 {
            return 0;
        }
        // Enumerated path: brute fold over all j predecessors.
        let best = deps
            .iter()
            .map(|(d, &v)| u64::from(v) + u64::from(f_weight(self.seed, d.j)))
            .min()
            .expect("cell j>0 has j deps");
        (u64::from(g_weight(self.seed, j)) + best) as u32
    }

    fn agg_spec(&self) -> Option<AggSpec> {
        Some(AggSpec::rows(Reduction::Min))
    }

    fn agg_key(&self, _axis: Axis, id: VertexId, value: &u32) -> i64 {
        i64::from(*value) + i64::from(f_weight(self.seed, id.j))
    }

    fn compute_ranged(&self, id: VertexId, _points: &DepView<'_, u32>, aggs: &AggView<'_>) -> u32 {
        let j = id.j;
        if j == 0 {
            return 0;
        }
        // O(1): the lane already holds min_{i<j}(D[i] + f(i)).
        (i64::from(g_weight(self.seed, j)) + aggs.row_prefix(0, j)) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial;
    use dpx10_core::{EngineConfig, ThreadedEngine};

    fn run(n: u32, seed: u64, cfg: EngineConfig) -> dpx10_core::DagResult<u32> {
        let app = LwsApp::new(n, seed);
        ThreadedEngine::new(app, app.pattern(), cfg).run().unwrap()
    }

    #[test]
    fn aggregated_matches_serial() {
        for seed in [1, 42, 7777] {
            let n = 61;
            let want = serial::lws(n, seed);
            let result = run(n, seed, EngineConfig::flat(3));
            for j in 0..n {
                assert_eq!(result.get(0, j), want[j as usize], "j={j} seed={seed}");
            }
        }
    }

    #[test]
    fn enumerated_matches_serial() {
        let n = 48;
        let want = serial::lws(n, 5);
        let result = run(n, 5, EngineConfig::flat(2).with_aggregation(false));
        for j in 0..n {
            assert_eq!(result.get(0, j), want[j as usize]);
        }
    }

    #[test]
    fn aggregates_survive_cache_starvation() {
        // A 2-entry cache evicts nearly every raw remote value, but the
        // lanes are residents: the aggregated run stays correct *and*
        // never issues a pull round-trip (LWS has no point deps).
        let n = 80;
        let want = serial::lws(n, 9);
        let result = run(n, 9, EngineConfig::flat(4).with_cache(2));
        for j in 0..n {
            assert_eq!(result.get(0, j), want[j as usize]);
        }
        assert_eq!(
            result.report().comm.pulls_sent,
            0,
            "interval reads must come from lanes, not pulls"
        );
    }
}

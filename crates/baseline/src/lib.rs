//! The "native X10" baseline for the overhead study (paper §VIII-B).
//!
//! "To evaluate DPX10's overhead, we implemented the SWLAG algorithm
//! with native X10 and compared it with DPX10's implementation. For the
//! sake of simplicity and fairness, the cache list was not used and
//! other configurations were set to the same."
//!
//! Two comparators are provided:
//!
//! * [`NativeSwlag`] — a real, hand-written pipelined wavefront
//!   implementation over raw threads and channels: column-block
//!   decomposition, one boundary message per row, no DAG pattern, no
//!   ready lists, no per-vertex scheduling. This is what a careful X10
//!   programmer would write by hand, and its wall-clock time against the
//!   framework's measures the true per-vertex overhead on this machine.
//! * [`native_cost_model`] — the simulator-side equivalent: the same
//!   per-cell compute cost as the framework run but with hand-written
//!   inner-loop bookkeeping (~1 ns) instead of the framework's
//!   per-vertex machinery. `figures fig12` runs `dpx10-sim` with both
//!   cost models to regenerate the DPX10/X10 ratio curve.

#![warn(missing_docs)]

use std::thread;
use std::time::Duration;

use dpx10_sync::channel::{bounded, Receiver, Sender};

use dpx10_apps::swlag::{Scoring, SwCell};
use dpx10_sim::CostModel;

/// "Minus infinity" safe under penalty addition.
const NEG_INF: i32 = i32::MIN / 4;

/// Hand-written pipelined SWLAG over `places` column blocks.
pub struct NativeSwlag {
    /// First sequence.
    pub a: Vec<u8>,
    /// Second sequence.
    pub b: Vec<u8>,
    /// Scores.
    pub scoring: Scoring,
    /// Number of pipeline stages (the stand-in for places).
    pub places: u16,
}

impl NativeSwlag {
    /// Creates the baseline with the same default scoring as
    /// [`dpx10_apps::SwlagApp`].
    pub fn new(a: Vec<u8>, b: Vec<u8>, places: u16) -> Self {
        assert!(places > 0);
        NativeSwlag {
            a,
            b,
            scoring: Scoring {
                gap_open: -2,
                gap_extend: -1,
                ..Scoring::default()
            },
            places,
        }
    }

    /// Runs the pipeline and returns the full `H` matrix
    /// (`(|a|+1) × (|b|+1)`).
    pub fn run(&self) -> Vec<Vec<i32>> {
        let h = self.a.len() + 1;
        let w = self.b.len() + 1;
        let stages = (self.places as usize).min(w.saturating_sub(1)).max(1);

        // Column-block bounds per stage over columns 1..w (column 0 is
        // the all-zero border handled implicitly).
        let cols = w - 1;
        let bounds: Vec<(usize, usize)> = (0..stages)
            .map(|s| {
                let start = 1 + s * cols / stages;
                let end = 1 + (s + 1) * cols / stages;
                (start, end)
            })
            .collect();

        // Boundary channels: stage s receives its left-border cell for
        // each row from stage s-1.
        let mut txs: Vec<Option<Sender<SwCell>>> = Vec::new();
        let mut rxs: Vec<Option<Receiver<SwCell>>> = vec![None];
        for _ in 1..stages {
            let (tx, rx) = bounded::<SwCell>(64);
            txs.push(Some(tx));
            rxs.push(Some(rx));
        }
        txs.push(None); // last stage sends nowhere

        let results: Vec<Vec<Vec<i32>>> = thread::scope(|scope| {
            let mut handles = Vec::new();
            for (s, &(c0, c1)) in bounds.iter().enumerate() {
                let rx = rxs[s].take();
                let tx = txs[s].take();
                let (a, b, sc) = (&self.a, &self.b, &self.scoring);
                handles.push(scope.spawn(move || stage_worker(a, b, sc, h, c0, c1, rx, tx)));
            }
            handles.into_iter().map(|jh| jh.join().unwrap()).collect()
        });

        // Assemble the full matrix (column 0 is the zero border).
        let mut out = vec![vec![0i32; w]; h];
        for (s, block) in results.into_iter().enumerate() {
            let (c0, _c1) = bounds[s];
            for (i, row) in block.into_iter().enumerate() {
                for (k, v) in row.into_iter().enumerate() {
                    out[i][c0 + k] = v;
                }
            }
        }
        out
    }

    /// Highest local-alignment score.
    pub fn best_score(&self) -> i32 {
        self.run().into_iter().flatten().max().unwrap_or(0)
    }
}

/// One pipeline stage: owns columns `c0..c1`, processes rows in order,
/// receiving its left-boundary cell from the previous stage and sending
/// its right-boundary cell onward — one message per row, the minimal
/// communication the problem admits.
#[allow(clippy::too_many_arguments)]
fn stage_worker(
    a: &[u8],
    b: &[u8],
    sc: &Scoring,
    h: usize,
    c0: usize,
    c1: usize,
    rx: Option<Receiver<SwCell>>,
    tx: Option<Sender<SwCell>>,
) -> Vec<Vec<i32>> {
    let zero = SwCell {
        h: 0,
        e: NEG_INF,
        f: NEG_INF,
    };
    let width = c1 - c0;
    let mut out = vec![vec![0i32; width]; h];
    // Previous row of (H,E,F) for columns c0-1..c1 (index 0 = boundary).
    let mut prev: Vec<SwCell> = vec![zero; width + 1];
    let mut cur: Vec<SwCell> = vec![zero; width + 1];
    for i in 1..h {
        // The boundary cell (i, c0-1): from the left neighbour, or the
        // zero border for the first stage.
        cur[0] = match &rx {
            Some(rx) => rx.recv().expect("left neighbour alive"),
            None => zero,
        };
        for (k, j) in (c0..c1).enumerate() {
            let left = cur[k];
            let up = prev[k + 1];
            let diag = prev[k];
            let e = (left.h + sc.gap_open).max(left.e + sc.gap_extend);
            let f = (up.h + sc.gap_open).max(up.f + sc.gap_extend);
            let s = sc.similarity(a[i - 1], b[j - 1]);
            let hh = 0.max(diag.h + s).max(e).max(f);
            cur[k + 1] = SwCell { h: hh, e, f };
            out[i][k] = hh;
        }
        if let Some(tx) = &tx {
            tx.send(cur[width]).expect("right neighbour alive");
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    out
}

/// The simulator cost model of the hand-written version: identical
/// per-cell compute, but hand-rolled loop bookkeeping (~1 ns) instead of
/// the framework's per-vertex scheduling (~6 ns). Running `dpx10-sim`
/// with this model and with [`CostModel::default`] side by side yields
/// the Fig. 12 DPX10/X10 ratio.
pub fn native_cost_model(compute_ns: u64) -> CostModel {
    CostModel {
        compute: Duration::from_nanos(compute_ns),
        framework_overhead: Duration::from_nanos(1),
        ..CostModel::default()
    }
}

/// The framework-side cost model with the same compute cost, for a fair
/// Fig. 12 pairing.
pub fn framework_cost_model(compute_ns: u64) -> CostModel {
    CostModel {
        compute: Duration::from_nanos(compute_ns),
        ..CostModel::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpx10_apps::serial;

    #[test]
    fn matches_serial_affine_reference() {
        let a = b"CTTAGCTAGCATGGA".to_vec();
        let b = b"TTAAGGCATCC".to_vec();
        let native = NativeSwlag::new(a.clone(), b.clone(), 3);
        let expect = serial::smith_waterman_affine(&a, &b, &native.scoring);
        let got = native.run();
        assert_eq!(got, expect);
    }

    #[test]
    fn stage_counts_do_not_change_results() {
        let a = dpx10_apps::workload::dna(64, 1);
        let b = dpx10_apps::workload::dna(50, 2);
        let one = NativeSwlag::new(a.clone(), b.clone(), 1).run();
        for places in [2u16, 3, 5, 8] {
            let many = NativeSwlag::new(a.clone(), b.clone(), places).run();
            assert_eq!(one, many, "{places} stages");
        }
    }

    #[test]
    fn more_stages_than_columns_is_fine() {
        let got = NativeSwlag::new(b"AC".to_vec(), b"A".to_vec(), 16).run();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].len(), 2);
    }

    #[test]
    fn matches_framework_engine() {
        use dpx10_apps::SwlagApp;
        use dpx10_core::{EngineConfig, ThreadedEngine};
        let a = dpx10_apps::workload::dna(40, 11);
        let b = dpx10_apps::workload::dna(35, 12);
        let native = NativeSwlag::new(a.clone(), b.clone(), 2).run();
        let app = SwlagApp::new(a.clone(), b.clone());
        let pattern = app.pattern();
        let result = ThreadedEngine::new(app, pattern, EngineConfig::flat(2))
            .run()
            .unwrap();
        for i in 0..=a.len() as u32 {
            for j in 0..=b.len() as u32 {
                assert_eq!(result.get(i, j).h, native[i as usize][j as usize]);
            }
        }
    }

    #[test]
    fn cost_models_orderered() {
        let nat = native_cost_model(90);
        let fw = framework_cost_model(90);
        assert!(nat.framework_overhead < fw.framework_overhead);
        assert_eq!(nat.compute, fw.compute);
    }
}

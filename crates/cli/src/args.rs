//! Hand-rolled argument parsing for the `dpx10` CLI (the workspace's
//! dependency policy keeps third-party crates to the approved offline
//! set, so no clap).

use std::fmt;

use dpx10_apgas::PlaceId;
use dpx10_core::{CommsMode, DistKind, RestoreManner, ScheduleStrategy};

/// Which application to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AppChoice {
    /// Smith-Waterman, linear + affine gap.
    Swlag,
    /// Smith-Waterman, linear gap (the paper's Fig. 7 demo).
    SwLinear,
    /// Manhattan Tourists Problem.
    Mtp,
    /// Longest Palindromic Subsequence.
    Lps,
    /// 0/1 Knapsack.
    Knapsack,
    /// Longest Common Subsequence.
    Lcs,
    /// Levenshtein edit distance.
    EditDistance,
    /// Needleman-Wunsch global alignment.
    NeedlemanWunsch,
    /// Nussinov RNA folding (2D/1D).
    Nussinov,
    /// Least-Weight Subsequence (interval deps, prefix-aggregated).
    Lws,
    /// GAP: edit distance with general gap penalties (interval deps).
    Gap,
}

impl AppChoice {
    /// All runnable apps with their CLI names.
    pub const ALL: [(&'static str, AppChoice); 11] = [
        ("swlag", AppChoice::Swlag),
        ("sw-linear", AppChoice::SwLinear),
        ("mtp", AppChoice::Mtp),
        ("lps", AppChoice::Lps),
        ("knapsack", AppChoice::Knapsack),
        ("lcs", AppChoice::Lcs),
        ("edit-distance", AppChoice::EditDistance),
        ("needleman-wunsch", AppChoice::NeedlemanWunsch),
        ("nussinov", AppChoice::Nussinov),
        ("lws", AppChoice::Lws),
        ("gap", AppChoice::Gap),
    ];

    fn parse(s: &str) -> Option<AppChoice> {
        Self::ALL
            .iter()
            .find(|(name, _)| *name == s)
            .map(|&(_, app)| app)
    }

    /// The CLI name.
    pub fn name(self) -> &'static str {
        Self::ALL
            .iter()
            .find(|&&(_, app)| app == self)
            .map(|&(name, _)| name)
            .expect("every app is in ALL")
    }
}

/// Which engine executes the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineChoice {
    /// The deterministic cluster simulator (default).
    Sim,
    /// The real threaded engine.
    Threaded,
    /// Multi-process places over TCP sockets (one OS process per place).
    Sockets,
}

/// A parsed `dpx10 run` invocation.
#[derive(Clone, Debug)]
pub struct RunArgs {
    /// The application.
    pub app: AppChoice,
    /// The engine.
    pub engine: EngineChoice,
    /// Problem scale as a vertex count.
    pub vertices: u64,
    /// Simulated nodes (sim engine).
    pub nodes: u16,
    /// Places (threaded engine).
    pub places: u16,
    /// Distribution override.
    pub dist: Option<DistKind>,
    /// Scheduling strategy.
    pub schedule: ScheduleStrategy,
    /// Cache capacity.
    pub cache: usize,
    /// Optional fault: place and progress fraction.
    pub fault: Option<(PlaceId, f64)>,
    /// Restore manner.
    pub restore: RestoreManner,
    /// Workload seed.
    pub seed: u64,
    /// Print an activity timeline (sim engine).
    pub timeline: bool,
    /// Write a Chrome `trace_event` JSON timeline here (all engines).
    pub trace_out: Option<String>,
    /// Write Prometheus text-format metrics here (all engines).
    pub metrics_out: Option<String>,
    /// Message-coalescing byte budget (`None` = off, the default).
    pub coalesce: Option<usize>,
    /// Anti-dependency delivery: pull on demand or push eagerly.
    pub comms: CommsMode,
    /// Prefix aggregation for interval-dependency (ranged) patterns.
    pub agg: bool,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            app: AppChoice::Swlag,
            engine: EngineChoice::Sim,
            vertices: 250_000,
            nodes: 4,
            places: 4,
            dist: None,
            schedule: ScheduleStrategy::Local,
            cache: 4096,
            fault: None,
            restore: RestoreManner::RecomputeRemote,
            seed: 1,
            timeline: false,
            trace_out: None,
            metrics_out: None,
            coalesce: None,
            comms: CommsMode::Pull,
            agg: true,
        }
    }
}

/// A parsed `dpx10 chaos` invocation.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosArgs {
    /// Run exactly this seed (otherwise a `start..start+count` range).
    pub seed: Option<u64>,
    /// First seed of the range.
    pub start: u64,
    /// Number of seeds in the range.
    pub count: u64,
    /// Include the in-process socket mesh backend.
    pub sockets: bool,
    /// Shrink failing plans to minimal counterexamples.
    pub shrink: bool,
    /// Run the whole suite with message coalescing at this byte budget
    /// (`None` = the classic one-message-per-event plane).
    pub coalesce: Option<usize>,
    /// Sweep elastic-mesh churn plans (join/drain/relocate/kill verbs)
    /// instead of the classic fault plans.
    pub elastic: bool,
    /// Anti-dependency delivery mode for the whole suite.
    pub comms: CommsMode,
    /// Prefix aggregation for interval-dependency (ranged) patterns.
    pub agg: bool,
}

impl Default for ChaosArgs {
    fn default() -> Self {
        ChaosArgs {
            seed: None,
            start: 0,
            count: 16,
            sockets: true,
            shrink: true,
            coalesce: None,
            elastic: false,
            comms: CommsMode::Pull,
            agg: true,
        }
    }
}

/// A parsed `dpx10 bench` invocation. Without `--plan`: the comms-plane
/// baseline, one run with coalescing off and one with it on, written as
/// JSON. With `--plan FILE`: the declarative ablation registry — expand
/// the plan, run every cell, append to the registry CSV, and optionally
/// ratchet against a committed baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchArgs {
    /// Problem scale as a vertex count.
    pub vertices: u64,
    /// Socket-mesh places.
    pub places: u16,
    /// Byte budget of the coalescing-on run.
    pub coalesce: usize,
    /// Workload seed.
    pub seed: u64,
    /// Output JSON path.
    pub out: String,
    /// Ablation plan TOML to run instead of the comms baseline.
    pub plan: Option<String>,
    /// Compare the plan run against its committed baseline and exit
    /// nonzero on regression.
    pub ratchet: bool,
    /// Tighten (or create) the committed baseline from this run.
    pub update_baseline: bool,
    /// Baseline file override (default `plans/baselines/<plan>.toml`).
    pub baseline: Option<String>,
    /// Registry CSV to append to.
    pub registry: String,
    /// Per-run JSON path override (default `results/runs/<plan>-<git>.json`).
    pub run_json: Option<String>,
    /// Aggregate the registry into a trend JSON artifact here.
    pub trend: Option<String>,
    /// `push` switches the baseline to pull-vs-push anti-dependency
    /// delivery (same mesh, coalescing pinned) instead of coalescing
    /// off-vs-on.
    pub comms: CommsMode,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            vertices: 250_000,
            places: 3,
            coalesce: 4096,
            seed: 1,
            out: "BENCH_comms.json".into(),
            plan: None,
            ratchet: false,
            update_baseline: false,
            baseline: None,
            registry: "results/registry.csv".into(),
            run_json: None,
            trend: None,
            comms: CommsMode::Pull,
        }
    }
}

/// A parsed `dpx10 serve` invocation: several DP jobs multiplexed over
/// one shared in-process socket mesh.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeArgs {
    /// Job list file (`<app> <vertices> <seed> [priority]` per line);
    /// `None` means the `--jobs`/`--app` sweep.
    pub jobfile: Option<String>,
    /// Sweep size when no jobfile is given.
    pub jobs: u32,
    /// Sweep application (must share the serve value type).
    pub app: AppChoice,
    /// Sweep problem scale as a vertex count.
    pub vertices: u64,
    /// Mesh places.
    pub places: u16,
    /// Concurrent-job admission cap.
    pub max_in_flight: usize,
    /// First sweep seed (job k uses `seed + k`).
    pub seed: u64,
    /// Re-run every job solo and compare fingerprints.
    pub verify: bool,
    /// Write Prometheus text-format job metrics here.
    pub metrics_out: Option<String>,
    /// Write a Chrome `trace_event` JSON timeline here.
    pub trace_out: Option<String>,
    /// Serve on the elastic mesh: places join and drain mid-sweep,
    /// chunks relocate live instead of recomputing.
    pub elastic: bool,
    /// Elastic-mesh place capacity (joins are refused beyond it).
    pub capacity: u16,
    /// Write the drain-vs-kill relocation benchmark JSON here
    /// (elastic mode only).
    pub bench_out: Option<String>,
    /// Anti-dependency delivery mode for every job on the mesh.
    pub comms: CommsMode,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            jobfile: None,
            jobs: 4,
            app: AppChoice::Lcs,
            vertices: 2_500,
            places: 3,
            max_in_flight: 4,
            seed: 1,
            verify: false,
            metrics_out: None,
            trace_out: None,
            elastic: false,
            capacity: 6,
            bench_out: None,
            comms: CommsMode::Pull,
        }
    }
}

/// The parsed command.
#[derive(Clone, Debug)]
pub enum Command {
    /// `dpx10 run <app> [...]`.
    Run(Box<RunArgs>),
    /// `dpx10 serve [...]`.
    Serve(ServeArgs),
    /// `dpx10 chaos [...]`.
    Chaos(ChaosArgs),
    /// `dpx10 bench [...]`.
    Bench(BenchArgs),
    /// `dpx10 apps`.
    Apps,
    /// `dpx10 patterns [--size HxW]`.
    Patterns {
        /// Analysis size.
        height: u32,
        /// Analysis size.
        width: u32,
    },
    /// `dpx10 trace summarize <file>`: validate an exported Chrome
    /// trace and print its per-place phase summary.
    TraceSummarize {
        /// Path of the Chrome `trace_event` JSON file.
        file: String,
    },
    /// `dpx10 join --coordinator HOST:PORT`: join a running socket
    /// mesh as a new place.
    Join {
        /// Coordinator address to dial.
        coordinator: String,
    },
    /// `dpx10 help` (or no args).
    Help,
}

/// A parse failure with a user-facing message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

/// Parses a seed in decimal or `0x…` hex (the form failure reports
/// print, so a reported seed pastes straight back into `--seed`).
fn parse_seed(s: &str) -> Result<u64, ParseError> {
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.map_err(|_| ParseError(format!("bad seed {s}")))
}

/// Parses a `--coalesce` value: a byte budget, or `off`/`0` for the
/// classic one-message-per-event comms plane.
fn parse_coalesce(v: &str) -> Result<Option<usize>, ParseError> {
    if v == "off" {
        return Ok(None);
    }
    let n: usize = v.parse().map_err(|_| {
        ParseError(format!(
            "bad --coalesce {v}, expected a byte budget or `off`"
        ))
    })?;
    Ok((n > 0).then_some(n))
}

/// Parses a `--comms` value: `pull` (on-demand anti-dependency fetch,
/// the classic plane) or `push` (owners forward values eagerly).
fn parse_comms(v: &str) -> Result<CommsMode, ParseError> {
    match v {
        "pull" => Ok(CommsMode::Pull),
        "push" => Ok(CommsMode::Push),
        other => err(format!("bad --comms {other}, expected `pull` or `push`")),
    }
}

/// Parses an `--agg` value: `on` (prefix-aggregated interval reads, the
/// default for ranged patterns) or `off` (enumerate every interval edge).
fn parse_agg(v: &str) -> Result<bool, ParseError> {
    match v {
        "on" => Ok(true),
        "off" => Ok(false),
        other => err(format!("bad --agg {other}, expected `on` or `off`")),
    }
}

/// Parses a full argument list (without the program name).
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("apps") => Ok(Command::Apps),
        Some("patterns") => {
            let mut height = 16;
            let mut width = 16;
            while let Some(flag) = it.next() {
                match flag {
                    "--size" => {
                        let v = it.next().ok_or(ParseError("--size needs HxW".into()))?;
                        let (h, w) = v
                            .split_once('x')
                            .ok_or(ParseError(format!("bad --size {v}, expected HxW")))?;
                        height = h
                            .parse()
                            .map_err(|_| ParseError(format!("bad height {h}")))?;
                        width = w
                            .parse()
                            .map_err(|_| ParseError(format!("bad width {w}")))?;
                    }
                    other => return err(format!("unknown patterns flag {other}")),
                }
            }
            Ok(Command::Patterns { height, width })
        }
        Some("trace") => match it.next() {
            Some("summarize") => {
                let file = it
                    .next()
                    .ok_or(ParseError("trace summarize needs a file".into()))?
                    .to_string();
                if it.next().is_some() {
                    return err("trace summarize takes exactly one file");
                }
                Ok(Command::TraceSummarize { file })
            }
            other => err(format!(
                "unknown trace subcommand {}; try `dpx10 trace summarize <file>`",
                other.unwrap_or("(none)")
            )),
        },
        Some("serve") => {
            let mut serve = ServeArgs::default();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| {
                    it.next()
                        .map(str::to_string)
                        .ok_or(ParseError(format!("{name} needs a value")))
                };
                match flag {
                    "--jobfile" => serve.jobfile = Some(value("--jobfile")?),
                    "--jobs" => {
                        serve.jobs = value("--jobs")?
                            .parse()
                            .map_err(|_| ParseError("bad --jobs".into()))?
                    }
                    "--app" => {
                        let name = value("--app")?;
                        serve.app = AppChoice::parse(&name)
                            .ok_or(ParseError(format!("unknown app {name}; try `dpx10 apps`")))?
                    }
                    "--vertices" => {
                        serve.vertices = value("--vertices")?
                            .parse()
                            .map_err(|_| ParseError("bad --vertices".into()))?
                    }
                    "--places" => {
                        serve.places = value("--places")?
                            .parse()
                            .map_err(|_| ParseError("bad --places".into()))?
                    }
                    "--max-in-flight" => {
                        serve.max_in_flight = value("--max-in-flight")?
                            .parse()
                            .map_err(|_| ParseError("bad --max-in-flight".into()))?
                    }
                    "--seed" => serve.seed = parse_seed(&value("--seed")?)?,
                    "--verify" => serve.verify = true,
                    "--metrics-out" => serve.metrics_out = Some(value("--metrics-out")?),
                    "--trace-out" => serve.trace_out = Some(value("--trace-out")?),
                    "--elastic" => serve.elastic = true,
                    "--capacity" => {
                        serve.capacity = value("--capacity")?
                            .parse()
                            .map_err(|_| ParseError("bad --capacity".into()))?
                    }
                    "--bench-out" => serve.bench_out = Some(value("--bench-out")?),
                    "--comms" => serve.comms = parse_comms(&value("--comms")?)?,
                    other => return err(format!("unknown serve flag {other}")),
                }
            }
            if serve.jobs == 0 {
                return err("--jobs must be at least 1");
            }
            if serve.places < 2 {
                return err("serve needs at least 2 places (one mesh, many jobs)");
            }
            if serve.max_in_flight == 0 {
                return err("--max-in-flight must be at least 1");
            }
            if serve.capacity < serve.places {
                return err("--capacity must be at least --places (joins only add)");
            }
            if serve.bench_out.is_some() && !serve.elastic {
                return err("--bench-out needs --elastic (it benchmarks relocation)");
            }
            Ok(Command::Serve(serve))
        }
        Some("join") => {
            let mut coordinator = None;
            while let Some(flag) = it.next() {
                match flag {
                    "--coordinator" => {
                        coordinator = Some(
                            it.next()
                                .ok_or(ParseError("--coordinator needs HOST:PORT".into()))?
                                .to_string(),
                        )
                    }
                    other => return err(format!("unknown join flag {other}")),
                }
            }
            match coordinator {
                Some(coordinator) if coordinator.contains(':') => Ok(Command::Join { coordinator }),
                Some(bad) => err(format!("bad --coordinator {bad}, expected HOST:PORT")),
                None => err("join needs --coordinator HOST:PORT"),
            }
        }
        Some("chaos") => {
            let mut chaos = ChaosArgs::default();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| {
                    it.next()
                        .map(str::to_string)
                        .ok_or(ParseError(format!("{name} needs a value")))
                };
                match flag {
                    "--seed" => chaos.seed = Some(parse_seed(&value("--seed")?)?),
                    "--start" => chaos.start = parse_seed(&value("--start")?)?,
                    "--count" => {
                        chaos.count = value("--count")?
                            .parse()
                            .map_err(|_| ParseError("bad --count".into()))?
                    }
                    "--no-sockets" => chaos.sockets = false,
                    "--no-shrink" => chaos.shrink = false,
                    "--coalesce" => chaos.coalesce = parse_coalesce(&value("--coalesce")?)?,
                    "--comms" => chaos.comms = parse_comms(&value("--comms")?)?,
                    "--agg" => chaos.agg = parse_agg(&value("--agg")?)?,
                    "--elastic" => chaos.elastic = true,
                    other => return err(format!("unknown chaos flag {other}")),
                }
            }
            if chaos.count == 0 {
                return err("--count must be at least 1");
            }
            Ok(Command::Chaos(chaos))
        }
        Some("bench") => {
            let mut bench = BenchArgs::default();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| {
                    it.next()
                        .map(str::to_string)
                        .ok_or(ParseError(format!("{name} needs a value")))
                };
                match flag {
                    "--vertices" => {
                        bench.vertices = value("--vertices")?
                            .parse()
                            .map_err(|_| ParseError("bad --vertices".into()))?
                    }
                    "--places" => {
                        bench.places = value("--places")?
                            .parse()
                            .map_err(|_| ParseError("bad --places".into()))?
                    }
                    "--coalesce" => {
                        bench.coalesce = match parse_coalesce(&value("--coalesce")?)? {
                            Some(n) => n,
                            None => return err("bench needs a non-zero coalescing budget"),
                        }
                    }
                    "--seed" => bench.seed = parse_seed(&value("--seed")?)?,
                    "--comms" => bench.comms = parse_comms(&value("--comms")?)?,
                    "--out" => bench.out = value("--out")?,
                    "--plan" => bench.plan = Some(value("--plan")?),
                    "--ratchet" => bench.ratchet = true,
                    "--update-baseline" => bench.update_baseline = true,
                    "--baseline" => bench.baseline = Some(value("--baseline")?),
                    "--registry" => bench.registry = value("--registry")?,
                    "--run-json" => bench.run_json = Some(value("--run-json")?),
                    "--trend" => bench.trend = Some(value("--trend")?),
                    other => return err(format!("unknown bench flag {other}")),
                }
            }
            if bench.plan.is_none() {
                if bench.places < 2 {
                    return err("bench needs at least 2 places (it measures inter-place frames)");
                }
                if bench.ratchet || bench.update_baseline || bench.baseline.is_some() {
                    return err("--ratchet/--update-baseline/--baseline need --plan FILE");
                }
                if bench.run_json.is_some() || bench.trend.is_some() {
                    return err("--run-json/--trend need --plan FILE");
                }
            }
            if bench.update_baseline && !bench.ratchet {
                return err("--update-baseline needs --ratchet (it tightens the ratchet)");
            }
            if bench.plan.is_some() && bench.comms == CommsMode::Push {
                return err("--comms push is the baseline comparison; plans pin their own cells");
            }
            Ok(Command::Bench(bench))
        }
        Some("run") => {
            let app_name = it
                .next()
                .ok_or(ParseError("run needs an app name".into()))?;
            let app = AppChoice::parse(app_name).ok_or(ParseError(format!(
                "unknown app {app_name}; try `dpx10 apps`"
            )))?;
            let mut run = RunArgs {
                app,
                ..RunArgs::default()
            };
            while let Some(flag) = it.next() {
                let mut value = |name: &str| {
                    it.next()
                        .map(str::to_string)
                        .ok_or(ParseError(format!("{name} needs a value")))
                };
                match flag {
                    "--engine" | "--backend" => {
                        run.engine = match value(flag)?.as_str() {
                            "sim" => EngineChoice::Sim,
                            "threaded" | "threads" => EngineChoice::Threaded,
                            "sockets" => EngineChoice::Sockets,
                            other => return err(format!("unknown {} {other}", &flag[2..])),
                        }
                    }
                    "--vertices" => {
                        run.vertices = value("--vertices")?
                            .parse()
                            .map_err(|_| ParseError("bad --vertices".into()))?
                    }
                    "--nodes" => {
                        run.nodes = value("--nodes")?
                            .parse()
                            .map_err(|_| ParseError("bad --nodes".into()))?
                    }
                    "--places" => {
                        run.places = value("--places")?
                            .parse()
                            .map_err(|_| ParseError("bad --places".into()))?
                    }
                    "--dist" => {
                        run.dist = Some(match value("--dist")?.as_str() {
                            "block-row" => DistKind::BlockRow,
                            "block-col" => DistKind::BlockCol,
                            "cyclic-row" => DistKind::CyclicRow,
                            "cyclic-col" => DistKind::CyclicCol,
                            other => return err(format!("unknown distribution {other}")),
                        })
                    }
                    "--schedule" => {
                        run.schedule = match value("--schedule")?.as_str() {
                            "local" => ScheduleStrategy::Local,
                            "random" => ScheduleStrategy::Random,
                            "min-comm" => ScheduleStrategy::MinComm,
                            "work-stealing" => ScheduleStrategy::WorkStealing,
                            other => return err(format!("unknown schedule {other}")),
                        }
                    }
                    "--cache" => {
                        run.cache = value("--cache")?
                            .parse()
                            .map_err(|_| ParseError("bad --cache".into()))?
                    }
                    "--fault" => {
                        let v = value("--fault")?;
                        let (place, fraction) = match v.split_once(':') {
                            Some((p, f)) => (
                                p.parse()
                                    .map_err(|_| ParseError(format!("bad fault place {p}")))?,
                                f.parse()
                                    .map_err(|_| ParseError(format!("bad fault fraction {f}")))?,
                            ),
                            None => (
                                v.parse()
                                    .map_err(|_| ParseError(format!("bad fault place {v}")))?,
                                0.5,
                            ),
                        };
                        if !(0.0..=1.0).contains(&fraction) {
                            return err("fault fraction must be in [0, 1]");
                        }
                        run.fault = Some((PlaceId(place), fraction));
                    }
                    "--restore" => {
                        run.restore = match value("--restore")?.as_str() {
                            "recompute" => RestoreManner::RecomputeRemote,
                            "copy" => RestoreManner::CopyRemote,
                            other => return err(format!("unknown restore manner {other}")),
                        }
                    }
                    "--seed" => {
                        run.seed = value("--seed")?
                            .parse()
                            .map_err(|_| ParseError("bad --seed".into()))?
                    }
                    "--timeline" => run.timeline = true,
                    "--trace-out" => run.trace_out = Some(value("--trace-out")?),
                    "--metrics-out" => run.metrics_out = Some(value("--metrics-out")?),
                    "--coalesce" => run.coalesce = parse_coalesce(&value("--coalesce")?)?,
                    "--comms" => run.comms = parse_comms(&value("--comms")?)?,
                    "--agg" => run.agg = parse_agg(&value("--agg")?)?,
                    other => return err(format!("unknown run flag {other}")),
                }
            }
            Ok(Command::Run(Box::new(run)))
        }
        Some(other) => err(format!("unknown command {other}; try `dpx10 help`")),
    }
}

/// The help text.
pub fn usage() -> String {
    let apps: Vec<&str> = AppChoice::ALL.iter().map(|&(n, _)| n).collect();
    format!(
        "dpx10 — distributed dynamic programming (DPX10 reproduction)\n\
         \n\
         USAGE:\n\
         \x20 dpx10 run <app> [flags]      run an application\n\
         \x20 dpx10 serve [flags]          run concurrent jobs on one shared place mesh\n\
         \x20 dpx10 join --coordinator A   join a running socket mesh as a new place\n\
         \x20 dpx10 chaos [flags]          seeded differential chaos testing\n\
         \x20 dpx10 bench [flags]          comms-plane baseline: coalescing off vs on\n\
         \x20 dpx10 apps                   list applications\n\
         \x20 dpx10 patterns [--size HxW]  analyse the built-in DAG patterns\n\
         \x20 dpx10 trace summarize FILE   validate + summarise an exported trace\n\
         \x20 dpx10 help                   this text\n\
         \n\
         APPS: {}\n\
         \n\
         RUN FLAGS:\n\
         \x20 --backend B             sim|threads|sockets executor (default sim);\n\
         \x20                         sockets spawns one OS process per place over TCP\n\
         \x20 --engine E              alias of --backend (also accepts `threaded`)\n\
         \x20 --vertices N            problem scale (default 250000)\n\
         \x20 --nodes N               simulated nodes, 2 places x 6 workers each (default 4)\n\
         \x20 --places N              threaded/socket places, 1 worker each (default 4)\n\
         \x20 --dist KIND             block-row|block-col|cyclic-row|cyclic-col\n\
         \x20 --schedule S            local|random|min-comm|work-stealing (default local)\n\
         \x20 --cache N               remote-value cache entries (default 4096)\n\
         \x20 --fault P[:F]           kill place P at progress fraction F (default 0.5)\n\
         \x20 --restore M             recompute|copy (default recompute)\n\
         \x20 --seed N                workload seed (default 1)\n\
         \x20 --timeline              print an activity timeline (sim engine)\n\
         \x20 --trace-out FILE        write a Chrome trace_event JSON timeline\n\
         \x20                         (Perfetto-loadable; sockets workers write FILE.p<N>)\n\
         \x20 --metrics-out FILE      write Prometheus text-format metrics\n\
         \x20 --coalesce BYTES|off    batch protocol messages per destination, flushing\n\
         \x20                         at BYTES (plus entry-count and idle-drain triggers;\n\
         \x20                         default off = one message per protocol event)\n\
         \x20 --comms pull|push       anti-dependency delivery: pull on demand (default)\n\
         \x20                         or push values eagerly to consumer places\n\
         \x20 --agg on|off            prefix aggregation for interval-dependency\n\
         \x20                         patterns (lws, gap): O(1) running-min reads\n\
         \x20                         when on (default), enumerated edges when off\n\
         \n\
         SERVE FLAGS:\n\
         \x20 --jobfile FILE          one job per line: <app> <vertices> <seed> [priority];\n\
         \x20                         `#` comments and blank lines are skipped\n\
         \x20 --jobs N --app A        without a jobfile: N copies of app A at seeds\n\
         \x20                         seed..seed+N (default 4 x lcs)\n\
         \x20                         serve apps: lcs, edit-distance, lps, nussinov,\n\
         \x20                         lws, gap\n\
         \x20 --vertices N            sweep problem scale per job (default 2500)\n\
         \x20 --places N              mesh places, every job shares them (default 3)\n\
         \x20 --max-in-flight M       concurrent-job admission cap (default 4)\n\
         \x20 --seed S                first sweep seed (default 1)\n\
         \x20 --verify                re-run each job solo, compare fingerprints\n\
         \x20 --metrics-out FILE      write Prometheus job metrics\n\
         \x20 --trace-out FILE        write a Chrome trace_event JSON timeline\n\
         \x20 --elastic               serve on the elastic mesh: places join and\n\
         \x20                         drain mid-sweep, chunks relocate live\n\
         \x20 --capacity N            elastic place capacity, joins refused beyond\n\
         \x20                         it (default 6)\n\
         \x20 --bench-out FILE        write the drain-and-rebalance vs kill-and-\n\
         \x20                         recompute benchmark JSON (needs --elastic)\n\
         \x20 --comms pull|push       anti-dependency delivery for every job\n\
         \n\
         JOIN FLAGS:\n\
         \x20 --coordinator H:P       dial the mesh coordinator at HOST:PORT and\n\
         \x20                         enter the roster as a fresh place\n\
         \n\
         CHAOS FLAGS:\n\
         \x20 --seed S                run exactly one seed (decimal or 0x… hex)\n\
         \x20 --start S --count N     run the seed range S..S+N (default 0..16)\n\
         \x20 --no-sockets            skip the in-process TCP mesh backend\n\
         \x20 --no-shrink             report failures without minimising the plan\n\
         \x20 --coalesce BYTES|off    run the whole suite with message coalescing\n\
         \x20 --comms pull|push       run the whole suite in this delivery mode\n\
         \x20 --agg on|off            prefix aggregation for ranged patterns in the\n\
         \x20                         sweep (default on)\n\
         \x20 --elastic               sweep elastic-mesh churn plans instead:\n\
         \x20                         joins, drains, live relocations and kills,\n\
         \x20                         every run fingerprint-checked against solo\n\
         \n\
         BENCH FLAGS:\n\
         \x20 --vertices N            problem scale (default 250000)\n\
         \x20 --places N              socket-mesh places (default 3)\n\
         \x20 --coalesce BYTES        budget of the coalescing-on run (default 4096)\n\
         \x20 --seed N                workload seed (default 1)\n\
         \x20 --comms pull|push       `push` compares pull-vs-push delivery on the\n\
         \x20                         same mesh instead of coalescing off-vs-on\n\
         \x20 --out FILE              JSON output path (default BENCH_comms.json)\n\
         \x20 --plan FILE             run a declarative ablation plan instead: expand\n\
         \x20                         the grid, run every cell, append provenance-\n\
         \x20                         hashed rows to the registry CSV\n\
         \x20 --ratchet               compare the plan run against its committed\n\
         \x20                         baseline, exit nonzero on regression\n\
         \x20 --update-baseline       tighten (or create) the baseline from this run;\n\
         \x20                         regressions beyond tolerance still fail\n\
         \x20 --baseline FILE         baseline path (default plans/baselines/<plan>.toml)\n\
         \x20 --registry FILE         registry CSV (default results/registry.csv)\n\
         \x20 --run-json FILE         per-run JSON report path override\n\
         \x20 --trend FILE            also aggregate the registry into trend JSON\n\
         \n\
         Each chaos seed expands into a random pattern, cluster shape and\n\
         fault plan, runs it on the serial, simulated, threaded and socket\n\
         backends, and checks the results and recovery invariants agree.\n\
         Output is deterministic: the same seed prints the same lines.\n",
        apps.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(args: &[&str]) -> Command {
        parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    fn parse_err(args: &[&str]) -> ParseError {
        parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap_err()
    }

    #[test]
    fn empty_is_help() {
        assert!(matches!(parse_ok(&[]), Command::Help));
        assert!(matches!(parse_ok(&["--help"]), Command::Help));
    }

    #[test]
    fn run_defaults() {
        let Command::Run(run) = parse_ok(&["run", "swlag"]) else {
            panic!()
        };
        assert_eq!(run.app, AppChoice::Swlag);
        assert_eq!(run.engine, EngineChoice::Sim);
        assert_eq!(run.vertices, 250_000);
        assert!(run.fault.is_none());
    }

    #[test]
    fn run_full_flags() {
        let Command::Run(run) = parse_ok(&[
            "run",
            "knapsack",
            "--engine",
            "threaded",
            "--vertices",
            "5000",
            "--places",
            "3",
            "--dist",
            "block-row",
            "--schedule",
            "min-comm",
            "--cache",
            "16",
            "--fault",
            "2:0.3",
            "--restore",
            "copy",
            "--seed",
            "9",
            "--timeline",
        ]) else {
            panic!()
        };
        assert_eq!(run.app, AppChoice::Knapsack);
        assert_eq!(run.engine, EngineChoice::Threaded);
        assert_eq!(run.vertices, 5000);
        assert_eq!(run.places, 3);
        assert!(matches!(run.dist, Some(DistKind::BlockRow)));
        assert_eq!(run.schedule, ScheduleStrategy::MinComm);
        assert_eq!(run.cache, 16);
        assert_eq!(run.fault, Some((PlaceId(2), 0.3)));
        assert_eq!(run.restore, RestoreManner::CopyRemote);
        assert_eq!(run.seed, 9);
        assert!(run.timeline);
    }

    #[test]
    fn backend_flag_selects_engines() {
        for (spelling, want) in [
            ("sim", EngineChoice::Sim),
            ("threads", EngineChoice::Threaded),
            ("sockets", EngineChoice::Sockets),
        ] {
            let Command::Run(run) = parse_ok(&["run", "lps", "--backend", spelling]) else {
                panic!()
            };
            assert_eq!(run.engine, want, "--backend {spelling}");
        }
        let Command::Run(run) = parse_ok(&["run", "lps", "--engine", "sockets"]) else {
            panic!()
        };
        assert_eq!(run.engine, EngineChoice::Sockets);
        assert!(parse_err(&["run", "lps", "--backend", "gpu"])
            .0
            .contains("unknown backend"));
    }

    #[test]
    fn fault_without_fraction_defaults_to_half() {
        let Command::Run(run) = parse_ok(&["run", "mtp", "--fault", "1"]) else {
            panic!()
        };
        assert_eq!(run.fault, Some((PlaceId(1), 0.5)));
    }

    #[test]
    fn bad_inputs_are_reported() {
        assert!(parse_err(&["run"]).0.contains("app name"));
        assert!(parse_err(&["run", "nope"]).0.contains("unknown app"));
        assert!(parse_err(&["run", "lps", "--engine", "gpu"])
            .0
            .contains("unknown engine"));
        assert!(parse_err(&["run", "lps", "--fault", "1:2.0"])
            .0
            .contains("[0, 1]"));
        assert!(parse_err(&["frobnicate"]).0.contains("unknown command"));
        assert!(parse_err(&["patterns", "--size", "8"]).0.contains("HxW"));
    }

    #[test]
    fn trace_flags_parse() {
        let Command::Run(run) = parse_ok(&[
            "run",
            "swlag",
            "--trace-out",
            "t.json",
            "--metrics-out",
            "m.prom",
        ]) else {
            panic!()
        };
        assert_eq!(run.trace_out.as_deref(), Some("t.json"));
        assert_eq!(run.metrics_out.as_deref(), Some("m.prom"));
        let Command::TraceSummarize { file } = parse_ok(&["trace", "summarize", "t.json"]) else {
            panic!()
        };
        assert_eq!(file, "t.json");
        assert!(parse_err(&["trace"]).0.contains("trace subcommand"));
        assert!(parse_err(&["trace", "summarize"])
            .0
            .contains("needs a file"));
    }

    #[test]
    fn coalesce_flag_parses() {
        let Command::Run(run) = parse_ok(&["run", "swlag", "--coalesce", "4096"]) else {
            panic!()
        };
        assert_eq!(run.coalesce, Some(4096));
        for spelling in ["off", "0"] {
            let Command::Run(run) = parse_ok(&["run", "swlag", "--coalesce", spelling]) else {
                panic!()
            };
            assert_eq!(run.coalesce, None, "--coalesce {spelling}");
        }
        let Command::Chaos(chaos) = parse_ok(&["chaos", "--count", "2", "--coalesce", "512"])
        else {
            panic!()
        };
        assert_eq!(chaos.coalesce, Some(512));
        assert!(!chaos.elastic);
        let Command::Chaos(chaos) = parse_ok(&["chaos", "--elastic", "--count", "4"]) else {
            panic!()
        };
        assert!(chaos.elastic);
        assert!(parse_err(&["run", "swlag", "--coalesce", "many"])
            .0
            .contains("bad --coalesce"));
    }

    #[test]
    fn agg_flag_parses() {
        let Command::Run(run) = parse_ok(&["run", "lws", "--agg", "off"]) else {
            panic!()
        };
        assert_eq!(run.app, AppChoice::Lws);
        assert!(!run.agg);
        let Command::Run(run) = parse_ok(&["run", "gap", "--agg", "on"]) else {
            panic!()
        };
        assert_eq!(run.app, AppChoice::Gap);
        assert!(run.agg);
        let Command::Chaos(chaos) = parse_ok(&["chaos", "--agg", "off"]) else {
            panic!()
        };
        assert!(!chaos.agg);
        assert!(parse_err(&["run", "lws", "--agg", "maybe"])
            .0
            .contains("bad --agg"));
    }

    #[test]
    fn comms_flag_parses_everywhere() {
        let Command::Run(run) = parse_ok(&["run", "swlag", "--comms", "push"]) else {
            panic!()
        };
        assert_eq!(run.comms, CommsMode::Push);
        let Command::Run(run) = parse_ok(&["run", "swlag", "--comms", "pull"]) else {
            panic!()
        };
        assert_eq!(run.comms, CommsMode::Pull);
        let Command::Chaos(chaos) = parse_ok(&["chaos", "--comms", "push"]) else {
            panic!()
        };
        assert_eq!(chaos.comms, CommsMode::Push);
        let Command::Bench(bench) = parse_ok(&["bench", "--comms", "push"]) else {
            panic!()
        };
        assert_eq!(bench.comms, CommsMode::Push);
        let Command::Serve(serve) = parse_ok(&["serve", "--comms", "push"]) else {
            panic!()
        };
        assert_eq!(serve.comms, CommsMode::Push);
        assert!(parse_err(&["run", "swlag", "--comms", "smoke"])
            .0
            .contains("bad --comms"));
        assert!(parse_err(&["bench", "--plan", "p.toml", "--comms", "push"])
            .0
            .contains("baseline comparison"));
    }

    #[test]
    fn bench_flags_parse() {
        let Command::Bench(bench) = parse_ok(&["bench"]) else {
            panic!()
        };
        assert_eq!(bench, BenchArgs::default());
        let Command::Bench(bench) = parse_ok(&[
            "bench",
            "--vertices",
            "10000",
            "--places",
            "2",
            "--coalesce",
            "8192",
            "--seed",
            "0x2a",
            "--out",
            "results/b.json",
        ]) else {
            panic!()
        };
        assert_eq!(bench.vertices, 10_000);
        assert_eq!(bench.places, 2);
        assert_eq!(bench.coalesce, 8192);
        assert_eq!(bench.seed, 42);
        assert_eq!(bench.out, "results/b.json");
        assert!(parse_err(&["bench", "--places", "1"])
            .0
            .contains("at least 2"));
        assert!(parse_err(&["bench", "--coalesce", "off"])
            .0
            .contains("non-zero"));
    }

    #[test]
    fn bench_plan_flags_parse() {
        let Command::Bench(bench) = parse_ok(&[
            "bench",
            "--plan",
            "plans/pinned-small.toml",
            "--ratchet",
            "--update-baseline",
            "--baseline",
            "b.toml",
            "--registry",
            "r.csv",
            "--run-json",
            "run.json",
            "--trend",
            "trend.json",
        ]) else {
            panic!()
        };
        assert_eq!(bench.plan.as_deref(), Some("plans/pinned-small.toml"));
        assert!(bench.ratchet);
        assert!(bench.update_baseline);
        assert_eq!(bench.baseline.as_deref(), Some("b.toml"));
        assert_eq!(bench.registry, "r.csv");
        assert_eq!(bench.run_json.as_deref(), Some("run.json"));
        assert_eq!(bench.trend.as_deref(), Some("trend.json"));
        // A plan run ignores --places floors (the plan carries its own
        // axes), but ratchet flags without a plan are refused.
        assert!(parse_err(&["bench", "--ratchet"]).0.contains("--plan"));
        assert!(parse_err(&["bench", "--trend", "t.json"])
            .0
            .contains("--plan"));
        assert!(
            parse_err(&["bench", "--plan", "p.toml", "--update-baseline"])
                .0
                .contains("--ratchet")
        );
    }

    #[test]
    fn serve_defaults_and_flags_parse() {
        let Command::Serve(serve) = parse_ok(&["serve"]) else {
            panic!()
        };
        assert_eq!(serve, ServeArgs::default());
        let Command::Serve(serve) = parse_ok(&[
            "serve",
            "--jobs",
            "6",
            "--app",
            "edit-distance",
            "--vertices",
            "900",
            "--places",
            "4",
            "--max-in-flight",
            "2",
            "--seed",
            "0x10",
            "--verify",
            "--metrics-out",
            "jobs.prom",
        ]) else {
            panic!()
        };
        assert_eq!(serve.jobs, 6);
        assert_eq!(serve.app, AppChoice::EditDistance);
        assert_eq!(serve.vertices, 900);
        assert_eq!(serve.places, 4);
        assert_eq!(serve.max_in_flight, 2);
        assert_eq!(serve.seed, 16);
        assert!(serve.verify);
        assert_eq!(serve.metrics_out.as_deref(), Some("jobs.prom"));
        let Command::Serve(serve) = parse_ok(&["serve", "--jobfile", "jobs.txt"]) else {
            panic!()
        };
        assert_eq!(serve.jobfile.as_deref(), Some("jobs.txt"));
        assert!(parse_err(&["serve", "--jobs", "0"])
            .0
            .contains("at least 1"));
        assert!(parse_err(&["serve", "--places", "1"])
            .0
            .contains("at least 2"));
        assert!(parse_err(&["serve", "--app", "gpu"])
            .0
            .contains("unknown app"));
        assert!(parse_err(&["serve", "--frobnicate"])
            .0
            .contains("unknown serve flag"));
    }

    #[test]
    fn elastic_serve_flags_parse() {
        let Command::Serve(serve) = parse_ok(&[
            "serve",
            "--elastic",
            "--capacity",
            "8",
            "--bench-out",
            "results/BENCH_elastic.json",
        ]) else {
            panic!()
        };
        assert!(serve.elastic);
        assert_eq!(serve.capacity, 8);
        assert_eq!(
            serve.bench_out.as_deref(),
            Some("results/BENCH_elastic.json")
        );
        assert!(
            parse_err(&["serve", "--elastic", "--places", "4", "--capacity", "3"])
                .0
                .contains("--capacity")
        );
        assert!(parse_err(&["serve", "--bench-out", "b.json"])
            .0
            .contains("--elastic"));
    }

    #[test]
    fn join_flags_parse() {
        let Command::Join { coordinator } = parse_ok(&["join", "--coordinator", "127.0.0.1:4100"])
        else {
            panic!()
        };
        assert_eq!(coordinator, "127.0.0.1:4100");
        assert!(parse_err(&["join"]).0.contains("--coordinator"));
        assert!(parse_err(&["join", "--coordinator", "nocolon"])
            .0
            .contains("HOST:PORT"));
        assert!(parse_err(&["join", "--port", "9"])
            .0
            .contains("unknown join flag"));
    }

    #[test]
    fn patterns_size_parses() {
        let Command::Patterns { height, width } = parse_ok(&["patterns", "--size", "12x7"]) else {
            panic!()
        };
        assert_eq!((height, width), (12, 7));
    }

    #[test]
    fn every_app_name_round_trips() {
        for (name, app) in AppChoice::ALL {
            assert_eq!(AppChoice::parse(name), Some(app));
            assert_eq!(app.name(), name);
        }
    }

    #[test]
    fn usage_mentions_every_app() {
        let text = usage();
        for (name, _) in AppChoice::ALL {
            assert!(text.contains(name), "usage misses {name}");
        }
    }
}

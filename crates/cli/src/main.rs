//! `dpx10` — the command-line runner of the DPX10 reproduction.
//!
//! ```text
//! dpx10 run swlag --nodes 8 --vertices 1000000 --timeline
//! dpx10 run knapsack --engine threaded --places 3 --fault 2:0.4
//! dpx10 patterns --size 32x32
//! ```

mod args;
mod commands;

use args::Command;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let code = match args::parse(&raw) {
        Ok(Command::Help) => {
            print!("{}", args::usage());
            0
        }
        Ok(Command::Apps) => {
            print!("{}", commands::list_apps());
            0
        }
        Ok(Command::Patterns { height, width }) => {
            print!("{}", commands::list_patterns(height, width));
            0
        }
        Ok(Command::TraceSummarize { file }) => match commands::trace_summarize(&file) {
            Ok(summary) => {
                print!("{summary}");
                0
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                1
            }
        },
        Ok(Command::Chaos(chaos_args)) => {
            let (report, all_passed) = commands::run_chaos(&chaos_args);
            print!("{report}");
            if all_passed {
                0
            } else {
                1
            }
        }
        Ok(Command::Serve(serve_args)) => match commands::run_serve(&serve_args) {
            Ok(summary) => {
                print!("{summary}");
                0
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                1
            }
        },
        Ok(Command::Join { coordinator }) => match commands::run_join(&coordinator) {
            Ok(summary) => {
                print!("{summary}");
                0
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                1
            }
        },
        Ok(Command::Bench(bench_args)) => match commands::run_bench(&bench_args) {
            Ok(summary) => {
                print!("{summary}");
                0
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                1
            }
        },
        Ok(Command::Run(run_args)) => match commands::run(&run_args, &raw) {
            Ok(summary) => {
                print!("{}", summary.render());
                0
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                1
            }
        },
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprint!("{}", args::usage());
            2
        }
    };
    std::process::exit(code);
}

//! Command implementations.

use std::net::TcpListener;
use std::time::Duration;

use dpx10_apgas::{
    launch_places, ElasticEvent, ElasticPlan, ElasticVerb, JoinConfig, PlaceId, SocketConfig,
    SocketNode, Topology,
};
use dpx10_apps::{
    workload, EditDistanceApp, GapApp, KnapsackApp, LcsApp, LpsApp, LwsApp, MtpApp,
    NeedlemanWunschApp, NussinovApp, SwLinearApp, SwlagApp,
};
use dpx10_bench::{AblationPlan, RatchetSpec};
use dpx10_core::{
    DagResult, DepView, DpApp, ElasticConfig, ElasticEngine, ElasticReport, ElasticServer,
    EngineConfig, FaultPlan, RunReport, ServeReport, SocketEngine, ThreadedEngine, VertexValue,
};
use dpx10_dag::{critical_path_len, wavefront_profile, BuiltinKind, DagPattern, VertexId};
use dpx10_obs::{chrome, summary as obs_summary, EventKind, Recorder, Registry, Trace};
use dpx10_sim::{CostModel, SimConfig, SimEngine, SimFaultPlan, TraceBuffer};

use crate::args::{AppChoice, EngineChoice, RunArgs};

/// A run's outcome in CLI form.
pub struct RunSummary {
    /// The app's headline answer (best score, optimum, …).
    pub answer: String,
    /// The run report.
    pub report: RunReport,
    /// Timeline, when requested and available.
    pub timeline: Option<String>,
    /// Workers per place, for utilisation.
    pub workers_per_place: u16,
}

impl RunSummary {
    /// Renders the human-readable report.
    pub fn render(&self) -> String {
        let r = &self.report;
        let mut out = String::new();
        out.push_str(&format!("answer: {}\n", self.answer));
        out.push_str(&format!(
            "vertices: {} total, {} computed ({} epochs)\n",
            r.vertices_total, r.vertices_computed, r.epochs
        ));
        if r.sim_time > Duration::ZERO {
            out.push_str(&format!("simulated makespan: {:?}\n", r.sim_time));
            if let Some(u) = r.utilization(self.workers_per_place) {
                out.push_str(&format!("worker utilisation: {:.1}%\n", u * 100.0));
            }
        }
        out.push_str(&format!("wall time: {:?}\n", r.wall_time));
        out.push_str(&format!(
            "communication: {} messages, {} bytes",
            r.comm.messages_sent, r.comm.bytes_sent
        ));
        if let Some(rate) = r.comm.cache_hit_rate() {
            out.push_str(&format!(", cache hit rate {:.1}%", rate * 100.0));
        }
        out.push('\n');
        if r.comm.batches_sent > 0 {
            out.push_str(&format!(
                "coalescing: {} batches carrying {} messages ({:.1} per flush)\n",
                r.comm.batches_sent,
                r.comm.batched_msgs,
                r.comm.batched_msgs as f64 / r.comm.batches_sent as f64
            ));
        }
        if r.comm.pulls_sent + r.comm.pushes_sent > 0 {
            out.push_str(&format!(
                "anti-dependencies: {} pulls ({} deduped), {} pushes ({} round-trips avoided)\n",
                r.comm.pulls_sent,
                r.comm.pulls_deduped,
                r.comm.pushes_sent,
                r.comm.pull_roundtrips_avoided
            ));
        }
        for (k, rec) in r.recoveries.iter().enumerate() {
            out.push_str(&format!(
                "recovery #{k}: kept {}, dropped {}, lost {}, migrated {} ({:?})\n",
                rec.kept, rec.dropped, rec.lost, rec.migrated, rec.sim_time
            ));
        }
        if let Some(t) = &self.timeline {
            out.push('\n');
            out.push_str(t);
        }
        out
    }
}

/// Dispatches a `run` command.
///
/// `raw` is the full argument vector (minus the program name) as typed;
/// the sockets backend re-executes the binary with it so every place
/// process rebuilds the identical workload.
pub fn run(args: &RunArgs, raw: &[String]) -> Result<RunSummary, String> {
    match args.app {
        AppChoice::Swlag => {
            let n = workload::side_for_vertices(args.vertices) as usize;
            let app = SwlagApp::new(workload::dna(n, args.seed), workload::dna(n, args.seed + 1));
            let pattern = app.pattern();
            let last = n as u32;
            execute(args, raw, app, pattern, 90, move |r| {
                format!("H({last}, {last}) = {:?}", r.get(last, last).h)
            })
        }
        AppChoice::SwLinear => {
            let n = workload::side_for_vertices(args.vertices) as usize;
            let app =
                SwLinearApp::new(workload::dna(n, args.seed), workload::dna(n, args.seed + 1));
            let pattern = app.pattern();
            let last = n as u32;
            execute(args, raw, app, pattern, 60, move |r| {
                format!("H({last}, {last}) = {}", r.get(last, last))
            })
        }
        AppChoice::Mtp => {
            let n = workload::side_for_vertices(args.vertices) + 1;
            let app = MtpApp::new(n, n, args.seed);
            let pattern = app.pattern();
            execute(args, raw, app, pattern, 60, move |r| {
                format!("longest path = {}", r.get(n - 1, n - 1))
            })
        }
        AppChoice::Lps => {
            let n = ((args.vertices as f64 * 2.0).sqrt() as usize).max(2);
            let app = LpsApp::new(workload::letters(n, args.seed));
            let pattern = app.pattern();
            let last = n as u32 - 1;
            execute(args, raw, app, pattern, 60, move |r| {
                format!("longest palindromic subsequence = {}", r.get(0, last))
            })
        }
        AppChoice::Knapsack => {
            let capacity = 999;
            let items = workload::knapsack_items(
                workload::knapsack_shape_for_vertices(args.vertices, capacity),
                64,
                args.seed,
            );
            let rows = items.len() as u32;
            let app = KnapsackApp::new(items, capacity);
            let pattern = app.pattern();
            execute(args, raw, app, pattern, 60, move |r| {
                format!("optimum value = {}", r.get(rows, capacity))
            })
        }
        AppChoice::Lcs => {
            let n = workload::side_for_vertices(args.vertices) as usize;
            let app = LcsApp::new(
                workload::letters(n, args.seed),
                workload::letters(n, args.seed + 1),
            );
            let pattern = app.pattern();
            let last = n as u32;
            execute(args, raw, app, pattern, 60, move |r| {
                format!("LCS length = {}", r.get(last, last))
            })
        }
        AppChoice::EditDistance => {
            let n = workload::side_for_vertices(args.vertices) as usize;
            let app = EditDistanceApp::new(
                workload::letters(n, args.seed),
                workload::letters(n, args.seed + 1),
            );
            let pattern = app.pattern();
            let last = n as u32;
            execute(args, raw, app, pattern, 60, move |r| {
                format!("edit distance = {}", r.get(last, last))
            })
        }
        AppChoice::NeedlemanWunsch => {
            let n = workload::side_for_vertices(args.vertices) as usize;
            let app = NeedlemanWunschApp::new(
                workload::dna(n, args.seed),
                workload::dna(n, args.seed + 1),
            );
            let pattern = app.pattern();
            let last = n as u32;
            execute(args, raw, app, pattern, 60, move |r| {
                format!("global alignment score = {}", r.get(last, last))
            })
        }
        AppChoice::Nussinov => {
            // 2D/1D: keep the default scale modest.
            let n = ((args.vertices as f64 * 2.0).sqrt() as usize).clamp(2, 512);
            let rna: Vec<u8> = workload::dna(n, args.seed)
                .into_iter()
                .map(|c| if c == b'T' { b'U' } else { c })
                .collect();
            let app = NussinovApp::new(rna);
            let pattern = app.pattern();
            let last = n as u32 - 1;
            execute(args, raw, app, pattern, 60, move |r| {
                format!("max base pairs = {}", r.get(0, last))
            })
        }
        AppChoice::Lws => {
            // 1-D: every vertex is a position of the single-row DAG.
            let n = (args.vertices as u32).max(2);
            let app = LwsApp::new(n, args.seed);
            let pattern = app.pattern();
            execute(args, raw, app, pattern, 60, move |r| {
                format!("least weight D({}) = {}", n - 1, r.get(0, n - 1))
            })
        }
        AppChoice::Gap => {
            let n = workload::side_for_vertices(args.vertices);
            let app = GapApp::new(n, n, args.seed);
            let pattern = app.pattern();
            execute(args, raw, app, pattern, 60, move |r| {
                format!(
                    "gap alignment cost G({0}, {0}) = {1}",
                    n - 1,
                    r.get(n - 1, n - 1)
                )
            })
        }
    }
}

/// Runs one app on the selected engine.
fn execute<A, P, F>(
    args: &RunArgs,
    raw: &[String],
    app: A,
    pattern: P,
    compute_ns: u64,
    answer: F,
) -> Result<RunSummary, String>
where
    A: DpApp + 'static,
    P: DagPattern + 'static,
    F: FnOnce(&DagResult<A::Value>) -> String,
    A::Value: VertexValue,
{
    // Observability is opt-in: the recorder stays disabled (a no-op on
    // every hot path) unless an export file was requested.
    let want_obs = args.trace_out.is_some() || args.metrics_out.is_some();
    let make_recorder = |places: u16| {
        if want_obs {
            Recorder::with_capacity(places as usize, 1 << 20)
        } else {
            Recorder::disabled()
        }
    };
    match args.engine {
        EngineChoice::Sim => {
            let mut config = SimConfig::paper(args.nodes)
                .with_schedule(args.schedule)
                .with_cache(args.cache)
                .with_restore(args.restore)
                .with_comms(args.comms)
                .with_cost(CostModel::with_compute(compute_ns));
            if let Some(kind) = &args.dist {
                config = config.with_dist(kind.clone());
            }
            if let Some((place, fraction)) = args.fault {
                config = config.with_fault(SimFaultPlan {
                    place,
                    after_fraction: fraction,
                });
            }
            let workers = config.topology.threads_per_place;
            let recorder = make_recorder(config.topology.num_places());
            let engine = SimEngine::new(app, pattern, config).with_recorder(recorder.clone());
            let (result, trace): (DagResult<A::Value>, Option<TraceBuffer>) = if args.timeline {
                let (r, t) = engine.run_traced(2_000_000).map_err(|e| e.to_string())?;
                (r, Some(t))
            } else {
                (engine.run().map_err(|e| e.to_string())?, None)
            };
            write_observability(&recorder, result.report(), args)?;
            Ok(RunSummary {
                answer: answer(&result),
                report: result.report().clone(),
                timeline: trace.map(|t| t.render_timeline(64)),
                workers_per_place: workers,
            })
        }
        EngineChoice::Threaded => {
            let config = places_config(args);
            let recorder = make_recorder(args.places);
            let result = ThreadedEngine::new(app, pattern, config)
                .with_recorder(recorder.clone())
                .run()
                .map_err(|e| e.to_string())?;
            write_observability(&recorder, result.report(), args)?;
            Ok(RunSummary {
                answer: answer(&result),
                report: result.report().clone(),
                timeline: None,
                workers_per_place: 1,
            })
        }
        EngineChoice::Sockets => {
            let config = places_config(args);
            let recorder = make_recorder(args.places);
            let engine = SocketEngine::new(app, pattern, config).with_recorder(recorder.clone());
            match SocketConfig::from_env().map_err(|e| e.to_string())? {
                Some(worker_cfg) => {
                    // We are a spawned place process: join the mesh, do
                    // our share, and exit without printing a summary —
                    // the coordinator owns the result. A worker's trace
                    // goes to its own `<file>.p<N>` (each process has its
                    // own recorder and clock).
                    let my_place = worker_cfg.place;
                    match engine.run(worker_cfg) {
                        Ok(_) => {
                            if let Some(path) = &args.trace_out {
                                let trace = recorder.drain();
                                let worker_path = format!("{path}.p{}", my_place.0);
                                if let Err(e) =
                                    chrome::write(std::path::Path::new(&worker_path), &trace)
                                {
                                    eprintln!("dpx10: place trace write failed: {e}");
                                }
                            }
                            std::process::exit(0)
                        }
                        Err(e) => {
                            eprintln!("dpx10: place error: {e}");
                            std::process::exit(1);
                        }
                    }
                }
                None => {
                    let (coord_cfg, mut children) =
                        launch_places(args.places, raw).map_err(|e| e.to_string())?;
                    match engine.run(coord_cfg) {
                        Ok(result) => {
                            let _ = children.wait_all();
                            let result = result.ok_or("coordinator finished without a result")?;
                            write_observability(&recorder, result.report(), args)?;
                            Ok(RunSummary {
                                answer: answer(&result),
                                report: result.report().clone(),
                                timeline: None,
                                workers_per_place: 1,
                            })
                        }
                        Err(e) => {
                            children.kill_all();
                            Err(e.to_string())
                        }
                    }
                }
            }
        }
    }
}

/// Drains the recorder and writes the requested trace/metrics exports.
fn write_observability(
    recorder: &Recorder,
    report: &RunReport,
    args: &RunArgs,
) -> Result<(), String> {
    if !recorder.enabled() {
        return Ok(());
    }
    let trace = recorder.drain();
    if let Some(path) = &args.trace_out {
        chrome::write(std::path::Path::new(path), &trace)
            .map_err(|e| format!("write trace {path}: {e}"))?;
    }
    if let Some(path) = &args.metrics_out {
        let registry = build_registry(report, &trace);
        std::fs::write(path, registry.render_prometheus())
            .map_err(|e| format!("write metrics {path}: {e}"))?;
    }
    Ok(())
}

/// Builds the metrics registry a finished run exports: run-level counters
/// from the report plus a per-place compute-time histogram from the
/// recorded vertex spans.
fn build_registry(report: &RunReport, trace: &Trace) -> Registry {
    let reg = Registry::new();
    reg.counter("dpx10_vertices_total", "DAG vertices in the pattern", &[])
        .add(report.vertices_total);
    reg.counter(
        "dpx10_vertices_computed_total",
        "vertices computed, recomputation included",
        &[],
    )
    .add(report.vertices_computed);
    reg.counter("dpx10_epochs_total", "execution epochs run", &[])
        .add(u64::from(report.epochs));
    reg.counter("dpx10_recoveries_total", "recoveries performed", &[])
        .add(report.recoveries.len() as u64);
    reg.counter("dpx10_messages_sent_total", "remote messages sent", &[])
        .add(report.comm.messages_sent);
    reg.counter("dpx10_bytes_sent_total", "remote bytes sent", &[])
        .add(report.comm.bytes_sent);
    reg.counter("dpx10_cache_hits_total", "remote-value cache hits", &[])
        .add(report.comm.cache_hits);
    reg.counter("dpx10_cache_misses_total", "remote-value cache misses", &[])
        .add(report.comm.cache_misses);
    reg.counter(
        "dpx10_batches_sent_total",
        "coalesced batches flushed to the transport",
        &[],
    )
    .add(report.comm.batches_sent);
    reg.counter(
        "dpx10_batched_messages_total",
        "protocol messages carried inside coalesced batches",
        &[],
    )
    .add(report.comm.batched_msgs);
    reg.counter(
        "dpx10_pulls_sent_total",
        "anti-dependency pull round-trips issued",
        &[],
    )
    .add(report.comm.pulls_sent);
    reg.counter(
        "dpx10_pulls_deduped_total",
        "pulls folded into an already in-flight request for the same cell",
        &[],
    )
    .add(report.comm.pulls_deduped);
    reg.counter(
        "dpx10_pushes_sent_total",
        "anti-dependency values pushed eagerly to consumer places",
        &[],
    )
    .add(report.comm.pushes_sent);
    reg.counter(
        "dpx10_pull_roundtrips_avoided_total",
        "parked consumers satisfied by a pushed value instead of a pull",
        &[],
    )
    .add(report.comm.pull_roundtrips_avoided);
    reg.counter(
        "dpx10_trace_events_dropped_total",
        "flight-recorder events dropped at full rings",
        &[],
    )
    .add(trace.dropped);
    reg.gauge("dpx10_wall_seconds", "wall-clock run time", &[])
        .set(report.wall_time.as_secs_f64());
    if report.sim_time > Duration::ZERO {
        reg.gauge("dpx10_sim_seconds", "virtual makespan (simulator)", &[])
            .set(report.sim_time.as_secs_f64());
    }
    for (slot, busy) in report.place_busy.iter().enumerate() {
        reg.gauge(
            "dpx10_place_busy_seconds",
            "per-place compute time, final epoch slot order",
            &[("slot", slot.to_string())],
        )
        .set(busy.as_secs_f64());
    }
    for ev in &trace.events {
        if ev.kind == EventKind::VertexCompute {
            reg.histogram_ns(
                "dpx10_compute_ns",
                "vertex compute span durations",
                &[("place", ev.place.to_string())],
            )
            .observe(ev.dur_ns);
        }
    }
    reg
}

/// `dpx10 trace summarize <file>`: parses an exported Chrome trace,
/// checks the span-nesting invariant, and renders the per-place phase
/// summary. An invalid or ill-nested trace is an `Err` (exit code 1), so
/// CI can use this as its trace validator.
pub fn trace_summarize(file: &str) -> Result<String, String> {
    let json = std::fs::read_to_string(file).map_err(|e| format!("read {file}: {e}"))?;
    let events = chrome::parse(&json).map_err(|e| format!("{file}: {e}"))?;
    chrome::check_nesting(&events).map_err(|e| format!("{file}: span nesting: {e}"))?;
    let rows = obs_summary::rows_from_chrome(&events);
    let mut out = format!("{file}: {} events, spans nest correctly\n\n", events.len());
    out.push_str(&obs_summary::render(&rows, 0));
    let reloc: Vec<u64> = events
        .iter()
        .filter(|e| e.name == "relocate" && e.ph == "X")
        .map(|e| e.dur_ns)
        .collect();
    if !reloc.is_empty() {
        let total: u64 = reloc.iter().sum();
        out.push_str(&format!(
            "\nrelocations: {} chunk(s), {:.1} us per chunk ({:.1} us total)\n",
            reloc.len(),
            total as f64 / reloc.len() as f64 / 1_000.0,
            total as f64 / 1_000.0
        ));
    }
    Ok(out)
}

/// The per-place engine configuration shared by the threaded and socket
/// backends (one worker per place, like the threaded default).
fn places_config(args: &RunArgs) -> EngineConfig {
    let mut config = EngineConfig {
        topology: Topology::flat(args.places),
        ..EngineConfig::paper(1)
    };
    config.schedule = args.schedule;
    config.cache_capacity = args.cache;
    config.restore_manner = args.restore;
    if let Some(kind) = &args.dist {
        config.dist_kind = kind.clone();
    }
    if let Some((place, fraction)) = args.fault {
        config.fault = Some(FaultPlan {
            place,
            after_fraction: fraction,
        });
    }
    config.coalesce = args.coalesce;
    config.comms = args.comms;
    config.aggregation = args.agg;
    config
}

/// `dpx10 chaos`: the seeded differential chaos suite. Returns the
/// rendered report and whether every seed passed. Output is
/// deterministic — no wall-clock content — so the same invocation is
/// bit-for-bit reproducible.
pub fn run_chaos(args: &crate::args::ChaosArgs) -> (String, bool) {
    if args.elastic {
        return run_elastic_chaos(args);
    }
    let opts = dpx10_harness::ChaosOptions {
        sockets: args.sockets,
        shrink: args.shrink,
        coalesce: args.coalesce,
        comms: args.comms,
        agg: args.agg,
        ..dpx10_harness::ChaosOptions::default()
    };
    let seeds: Vec<u64> = match args.seed {
        Some(s) => vec![s],
        None => (0..args.count)
            .map(|k| args.start.wrapping_add(k))
            .collect(),
    };
    let mut out = String::new();
    let mut failed = Vec::new();
    for &seed in &seeds {
        let report = dpx10_harness::run_seed(seed, &opts);
        out.push_str(&report.render());
        out.push('\n');
        if !report.passed() {
            failed.push(seed);
        }
    }
    out.push_str(&format!(
        "chaos: {} seed(s), {} passed, {} failed\n",
        seeds.len(),
        seeds.len() - failed.len(),
        failed.len()
    ));
    for seed in &failed {
        out.push_str(&format!(
            "reproduce with: dpx10 chaos --seed {seed:#018x}\n"
        ));
        if let Some(path) = dpx10_harness::write_failure_trace(*seed) {
            out.push_str(&format!(
                "failure trace: {} (inspect with `dpx10 trace summarize`)\n",
                path.display()
            ));
        }
    }
    (out, failed.is_empty())
}

/// One elastic churn plan run on the 12×12 reference workload (the
/// chaos harness's non-commutative mixing kernel, so any dropped,
/// duplicated or reordered dependency value changes the fingerprint).
fn elastic_plan_run(
    founding: u16,
    capacity: u16,
    plan: ElasticPlan,
) -> Result<dpx10_core::ElasticRun<u64>, String> {
    ElasticEngine::new(
        dpx10_harness::MixApp,
        dpx10_dag::builtin::Grid3::new(12, 12),
        ElasticConfig::new(founding, capacity),
    )
    .with_plan(plan)
    .run()
    .map_err(|e| e.to_string())
}

/// Checks one elastic plan against the solo fingerprint, the serial
/// oracle and the compute-conservation invariant; `Ok` carries the
/// run's report for the summary line.
fn elastic_plan_check(plan: &ElasticPlan, solo: u64) -> Result<ElasticReport, String> {
    let run = elastic_plan_run(3, 5, plan.clone())?;
    if run.fingerprint() != solo {
        return Err(format!(
            "fingerprint {:#018x} != solo {solo:#018x}",
            run.fingerprint()
        ));
    }
    for (id, want) in dpx10_harness::oracle(&dpx10_dag::builtin::Grid3::new(12, 12)) {
        if run.try_get(id.i, id.j) != Some(want) {
            return Err(format!("value mismatch at {id}"));
        }
    }
    let r = run.report().clone();
    if r.computed - r.recomputed != r.total {
        return Err(format!(
            "computed {} - recomputed {} != total {}",
            r.computed, r.recomputed, r.total
        ));
    }
    Ok(r)
}

/// `dpx10 chaos --elastic`: the membership-churn sweep. Every seed
/// expands into an [`ElasticPlan`] of joins, drains, live relocations
/// and kills; the run must match the solo fingerprint, the serial
/// oracle, and conserve compute. Deterministic like the classic sweep.
fn run_elastic_chaos(args: &crate::args::ChaosArgs) -> (String, bool) {
    let seeds: Vec<u64> = match args.seed {
        Some(s) => vec![s],
        None => (0..args.count)
            .map(|k| args.start.wrapping_add(k))
            .collect(),
    };
    let solo = match elastic_plan_run(1, 1, ElasticPlan::quiet(0)) {
        Ok(run) => run.fingerprint(),
        Err(e) => return (format!("elastic chaos: solo oracle failed: {e}\n"), false),
    };
    let mut out = String::new();
    let mut failed = Vec::new();
    for &seed in &seeds {
        let plan = ElasticPlan::generate(seed, 3, 5);
        match elastic_plan_check(&plan, solo) {
            Ok(r) => out.push_str(&format!(
                "elastic seed {seed:#018x}: ok    {plan} (joins {}, drains {}, kills {}, relocated {}, recomputed {})\n",
                r.joins, r.drains, r.kills, r.chunks_relocated, r.recomputed
            )),
            Err(e) => {
                out.push_str(&format!("elastic seed {seed:#018x}: FAIL  {plan}: {e}\n"));
                if args.shrink {
                    // Greedy minimisation: keep dropping one event at a
                    // time while the plan still fails.
                    let mut minimal = plan.clone();
                    'minimise: loop {
                        for cand in minimal.shrink() {
                            if elastic_plan_check(&cand, solo).is_err() {
                                minimal = cand;
                                continue 'minimise;
                            }
                        }
                        break;
                    }
                    out.push_str(&format!("  minimal failing plan: {minimal}\n"));
                }
                failed.push(seed);
            }
        }
    }
    out.push_str(&format!(
        "elastic chaos: {} seed(s), {} passed, {} failed\n",
        seeds.len(),
        seeds.len() - failed.len(),
        failed.len()
    ));
    for seed in &failed {
        out.push_str(&format!(
            "reproduce with: dpx10 chaos --elastic --seed {seed:#018x}\n"
        ));
    }
    (out, failed.is_empty())
}

/// `dpx10 bench`: with `--plan FILE`, runs a declarative ablation plan
/// through the experiment registry; otherwise the comms-plane baseline.
/// The baseline runs SWLAG twice over an in-process socket mesh —
/// coalescing off, then on at the requested byte budget — and writes
/// the frame/byte/wall-time comparison to a JSON file. The
/// cyclic-column distribution puts every column boundary across a place
/// boundary, so the uncoalesced run pays one transport frame per remote
/// `Done` and the comparison measures the comms plane rather than the
/// distribution's boundary traffic.
///
/// Errs (process exit 1) if the two runs' result fingerprints differ: a
/// coalesced run must be byte-for-byte the same computation.
pub fn run_bench(args: &crate::args::BenchArgs) -> Result<String, String> {
    if let Some(plan_path) = &args.plan {
        return run_bench_plan(args, plan_path);
    }
    if args.comms == dpx10_core::CommsMode::Push {
        return run_bench_push(args);
    }
    let off = bench_swlag_sockets(args, None, dpx10_core::CommsMode::Pull, 4096)?;
    let mut on = bench_swlag_sockets(args, Some(args.coalesce), dpx10_core::CommsMode::Pull, 4096)?;
    // Test hook: force the mismatch path so the exit-nonzero contract
    // stays pinned by a smoke test without a real equivalence bug.
    if std::env::var("DPX10_BENCH_FORCE_FP_MISMATCH").as_deref() == Ok("1") {
        on.0 ^= 1;
    }
    let n = workload::side_for_vertices(args.vertices) as usize;
    if off.0 != on.0 {
        return Err(format!(
            "coalescing changed the result: fingerprint {:#018x} (off) vs {:#018x} (on)",
            off.0, on.0
        ));
    }
    let (fingerprint, off) = (off.0, off.1);
    let on = on.1;
    let ratio = off.comm.messages_sent as f64 / on.comm.messages_sent.max(1) as f64;
    let json = format!(
        "{{\n  \"app\": \"swlag\",\n  \"vertices\": {},\n  \"side\": {n},\n  \"places\": {},\n  \"dist\": \"cyclic-col\",\n  \"seed\": {},\n  \"coalesce_bytes\": {},\n  \"fingerprint\": \"{fingerprint:#018x}\",\n  \"off\": {},\n  \"on\": {},\n  \"frame_reduction\": {ratio:.2}\n}}\n",
        args.vertices,
        args.places,
        args.seed,
        args.coalesce,
        bench_mode_json(&off),
        bench_mode_json(&on),
    );
    std::fs::write(&args.out, &json).map_err(|e| format!("write {}: {e}", args.out))?;
    let mut out = format!(
        "bench: swlag, {} vertices ({n}x{n}), {} places, cyclic-col, seed {}\n",
        args.vertices, args.places, args.seed
    );
    out.push_str(&format!(
        "coalesce off:  {:>9} frames, {:>11} bytes, {:?}\n",
        off.comm.messages_sent, off.comm.bytes_sent, off.wall_time
    ));
    out.push_str(&format!(
        "coalesce {:>4}: {:>9} frames, {:>11} bytes, {:?} ({} batches carrying {} messages)\n",
        args.coalesce,
        on.comm.messages_sent,
        on.comm.bytes_sent,
        on.wall_time,
        on.comm.batches_sent,
        on.comm.batched_msgs
    ));
    out.push_str(&format!(
        "frame reduction: {ratio:.1}x, fingerprints match ({fingerprint:#018x})\n"
    ));
    out.push_str(&format!("wrote {}\n", args.out));
    Ok(out)
}

/// The remote-value cache pinned by the pull-vs-push baseline. Small
/// enough that the SWLAG anti-diagonal working set spills it, so the
/// pull plane actually pays cache-miss round-trips for push to remove;
/// at the default 4096 the FIFO cache absorbs nearly every remote read
/// and both modes would measure zero.
const PUSH_BENCH_CACHE: usize = 256;

/// `dpx10 bench --comms push`: the anti-dependency delivery baseline.
/// Runs the same SWLAG socket-mesh cell twice — pull mode, then push
/// mode — with the cache pinned small (see [`PUSH_BENCH_CACHE`]) and
/// coalescing off, so the comparison isolates the delivery plane:
/// every avoided `Pull`/`PullVal` round-trip shows up directly in the
/// frame counts. Errs if the two fingerprints differ — push is a
/// transport optimisation, never a different computation.
fn run_bench_push(args: &crate::args::BenchArgs) -> Result<String, String> {
    let pull = bench_swlag_sockets(args, None, dpx10_core::CommsMode::Pull, PUSH_BENCH_CACHE)?;
    let mut push = bench_swlag_sockets(args, None, dpx10_core::CommsMode::Push, PUSH_BENCH_CACHE)?;
    // Same exit-nonzero smoke hook as the coalescing baseline.
    if std::env::var("DPX10_BENCH_FORCE_FP_MISMATCH").as_deref() == Ok("1") {
        push.0 ^= 1;
    }
    if pull.0 != push.0 {
        return Err(format!(
            "push mode changed the result: fingerprint {:#018x} (pull) vs {:#018x} (push)",
            pull.0, push.0
        ));
    }
    let (fingerprint, pull) = (pull.0, pull.1);
    let push = push.1;
    let n = workload::side_for_vertices(args.vertices) as usize;
    let reduction = 1.0 - push.comm.pulls_sent as f64 / pull.comm.pulls_sent.max(1) as f64;
    let json = format!(
        "{{\n  \"app\": \"swlag\",\n  \"vertices\": {},\n  \"side\": {n},\n  \"places\": {},\n  \"dist\": \"cyclic-col\",\n  \"seed\": {},\n  \"cache\": {PUSH_BENCH_CACHE},\n  \"fingerprint\": \"{fingerprint:#018x}\",\n  \"pull\": {},\n  \"push\": {},\n  \"pull_reduction\": {reduction:.2}\n}}\n",
        args.vertices,
        args.places,
        args.seed,
        bench_comms_json(&pull),
        bench_comms_json(&push),
    );
    std::fs::write(&args.out, &json).map_err(|e| format!("write {}: {e}", args.out))?;
    let mut out = format!(
        "bench: swlag, {} vertices ({n}x{n}), {} places, cyclic-col, cache {PUSH_BENCH_CACHE}, seed {}\n",
        args.vertices, args.places, args.seed
    );
    out.push_str(&format!(
        "comms pull: {:>9} pulls, {:>9} frames, {:>11} bytes, {:?}\n",
        pull.comm.pulls_sent, pull.comm.messages_sent, pull.comm.bytes_sent, pull.wall_time
    ));
    out.push_str(&format!(
        "comms push: {:>9} pulls, {:>9} frames, {:>11} bytes, {:?} ({} pushes, {} round-trips avoided)\n",
        push.comm.pulls_sent,
        push.comm.messages_sent,
        push.comm.bytes_sent,
        push.wall_time,
        push.comm.pushes_sent,
        push.comm.pull_roundtrips_avoided
    ));
    out.push_str(&format!(
        "pull round-trips reduced {:.1}%, fingerprints match ({fingerprint:#018x})\n",
        reduction * 100.0
    ));
    out.push_str(&format!("wrote {}\n", args.out));
    Ok(out)
}

/// One comms mode as a JSON object string (pull-vs-push baseline).
fn bench_comms_json(r: &RunReport) -> String {
    format!(
        "{{ \"pulls_sent\": {}, \"pushes_sent\": {}, \"pull_roundtrips_avoided\": {}, \"frames\": {}, \"bytes\": {}, \"wall_ms\": {} }}",
        r.comm.pulls_sent,
        r.comm.pushes_sent,
        r.comm.pull_roundtrips_avoided,
        r.comm.messages_sent,
        r.comm.bytes_sent,
        r.wall_time.as_millis()
    )
}

/// One bench mode as a JSON object string.
fn bench_mode_json(r: &RunReport) -> String {
    format!(
        "{{ \"frames\": {}, \"bytes\": {}, \"wall_ms\": {}, \"batches\": {}, \"batched_messages\": {} }}",
        r.comm.messages_sent,
        r.comm.bytes_sent,
        r.wall_time.as_millis(),
        r.comm.batches_sent,
        r.comm.batched_msgs
    )
}

/// Runs the comms-baseline SWLAG configuration through the shared
/// registry runner: an in-process socket mesh (every place a thread of
/// this process, same idiom as the chaos harness), cyclic-column
/// distribution, default cache. Returns the result fingerprint plus the
/// coordinator's report.
fn bench_swlag_sockets(
    args: &crate::args::BenchArgs,
    coalesce: Option<usize>,
    comms: dpx10_core::CommsMode,
    cache: usize,
) -> Result<(u64, RunReport), String> {
    let cell = dpx10_bench::Experiment {
        plan: "comms-baseline".into(),
        plan_digest: 0,
        index: 0,
        cell: format!(
            "sockets/swlag/v{}/p{}/c{}/t1/k{cache}/m{}",
            args.vertices,
            args.places,
            coalesce.map_or("off".into(), |b| b.to_string()),
            comms.name()
        ),
        backend: dpx10_bench::Backend::Sockets,
        app: dpx10_bench::BenchApp::Swlag,
        vertices: args.vertices,
        places: args.places,
        coalesce,
        tile: 1,
        cache,
        dist: dpx10_bench::DistChoice::CyclicCol,
        schedule: dpx10_core::ScheduleStrategy::Local,
        seed: args.seed,
        comms,
    };
    dpx10_bench::runner::run_cell(&cell)
}

/// `dpx10 bench --plan`: expand the plan, run every cell, append
/// provenance-hashed rows to the registry CSV, write the per-run JSON,
/// and optionally compare against (or tighten) the committed ratchet
/// baseline. Stdout carries only deterministic data — fingerprints and
/// the deterministic KPIs — so two consecutive runs of the same plan
/// print byte-identical text; wall times and file paths that embed
/// timestamps go to stderr.
fn run_bench_plan(args: &crate::args::BenchArgs, plan_path: &str) -> Result<String, String> {
    use std::path::Path;

    let text = std::fs::read_to_string(plan_path).map_err(|e| format!("read {plan_path}: {e}"))?;
    let plan = AblationPlan::parse(&text).map_err(|e| format!("{plan_path}: {e}"))?;
    plan.validate().map_err(|e| format!("{plan_path}: {e}"))?;
    let digest = plan.digest();
    let cells = plan.expand();
    let git = dpx10_bench::registry::git_describe();
    let host = dpx10_bench::registry::host_fingerprint();
    let mut out = format!(
        "plan {} — {} cells, digest {digest:016x}\n",
        plan.name,
        cells.len()
    );
    let mut records = Vec::new();
    for exp in &cells {
        let (fingerprint, report) = dpx10_bench::runner::run_cell(exp)?;
        let record = dpx10_bench::runner::record(exp, fingerprint, &report, &git, &host);
        eprintln!(
            "dpx10 bench: {} in {:?} ({} frames, {} bytes, {} pulls)",
            exp.cell, report.wall_time, record.frames, record.bytes, record.pull_roundtrips
        );
        out.push_str(&format!(
            "{}  fp {}  computed {}  recoveries {}\n",
            exp.cell, record.fingerprint, record.computed, record.recoveries
        ));
        records.push(record);
    }
    dpx10_bench::registry::append(Path::new(&args.registry), &records)?;
    out.push_str(&format!(
        "registry: appended {} rows to {}\n",
        records.len(),
        args.registry
    ));
    let run_json = args.run_json.clone().unwrap_or_else(|| {
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        format!(
            "results/runs/{}-{ts}-{}.json",
            plan.name,
            std::process::id()
        )
    });
    dpx10_bench::registry::write_run_json(Path::new(&run_json), &plan.name, digest, &records)?;
    eprintln!("dpx10 bench: per-run report written to {run_json}");
    if let Some(trend_path) = &args.trend {
        let rows = dpx10_bench::registry::load(Path::new(&args.registry))?;
        std::fs::write(trend_path, dpx10_bench::registry::trend_json(&rows))
            .map_err(|e| format!("write {trend_path}: {e}"))?;
        out.push_str(&format!("trend: {trend_path}\n"));
    }
    if args.ratchet {
        let baseline_path = args
            .baseline
            .clone()
            .unwrap_or_else(|| format!("plans/baselines/{}.toml", plan.name));
        match std::fs::read_to_string(&baseline_path) {
            Ok(baseline_text) => {
                let spec = RatchetSpec::parse(&baseline_text)
                    .map_err(|e| format!("{baseline_path}: {e}"))?;
                let report = spec.compare(digest, &records)?;
                if !report.passed() {
                    let mut msg = format!("perf ratchet FAILED against {baseline_path}:\n");
                    for regression in &report.regressions {
                        msg.push_str(&format!("  {regression}\n"));
                    }
                    return Err(msg);
                }
                for (cell, kpi, base, measured) in &report.improvements {
                    eprintln!("dpx10 bench: improvement {cell} {kpi}: {base} -> {measured}");
                }
                if args.update_baseline {
                    std::fs::write(&baseline_path, spec.tightened(&records).render())
                        .map_err(|e| format!("write {baseline_path}: {e}"))?;
                    eprintln!(
                        "dpx10 bench: baseline tightened ({} improvement(s))",
                        report.improvements.len()
                    );
                }
                out.push_str(&format!(
                    "ratchet: PASS, {} cells within tolerance\n",
                    report.cells
                ));
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                if args.update_baseline {
                    if let Some(parent) = Path::new(&baseline_path).parent() {
                        if !parent.as_os_str().is_empty() {
                            std::fs::create_dir_all(parent)
                                .map_err(|e| format!("create {}: {e}", parent.display()))?;
                        }
                    }
                    let spec = RatchetSpec::from_run(&plan.name, digest, &records);
                    std::fs::write(&baseline_path, spec.render())
                        .map_err(|e| format!("write {baseline_path}: {e}"))?;
                    out.push_str(&format!(
                        "ratchet: baseline created at {baseline_path} ({} cells)\n",
                        records.len()
                    ));
                } else {
                    return Err(format!(
                        "no committed baseline at {baseline_path}; create one with \
                         --ratchet --update-baseline and commit it"
                    ));
                }
            }
            Err(e) => return Err(format!("read {baseline_path}: {e}")),
        }
    }
    Ok(out)
}

/// The applications `dpx10 serve` can multiplex: a [`JobServer`] runs
/// one value type per mesh, so serve offers the builtin apps that share
/// `Value = u32` and dispatches per job.
enum ServeJobApp {
    Lcs(LcsApp),
    EditDistance(EditDistanceApp),
    Lps(LpsApp),
    Nussinov(NussinovApp),
    Lws(LwsApp),
    Gap(GapApp),
}

impl DpApp for ServeJobApp {
    type Value = u32;
    fn compute(&self, id: VertexId, deps: &DepView<'_, u32>) -> u32 {
        match self {
            ServeJobApp::Lcs(app) => app.compute(id, deps),
            ServeJobApp::EditDistance(app) => app.compute(id, deps),
            ServeJobApp::Lps(app) => app.compute(id, deps),
            ServeJobApp::Nussinov(app) => app.compute(id, deps),
            ServeJobApp::Lws(app) => app.compute(id, deps),
            ServeJobApp::Gap(app) => app.compute(id, deps),
        }
    }
    fn agg_spec(&self) -> Option<dpx10_core::AggSpec> {
        match self {
            ServeJobApp::Lws(app) => app.agg_spec(),
            ServeJobApp::Gap(app) => app.agg_spec(),
            _ => None,
        }
    }
    fn agg_key(&self, axis: dpx10_core::Axis, id: VertexId, value: &u32) -> i64 {
        match self {
            ServeJobApp::Lws(app) => app.agg_key(axis, id, value),
            ServeJobApp::Gap(app) => app.agg_key(axis, id, value),
            _ => unimplemented!("no aggregation for this serve app"),
        }
    }
    fn compute_ranged(
        &self,
        id: VertexId,
        points: &DepView<'_, u32>,
        aggs: &dpx10_core::AggView<'_>,
    ) -> u32 {
        match self {
            ServeJobApp::Lws(app) => app.compute_ranged(id, points, aggs),
            ServeJobApp::Gap(app) => app.compute_ranged(id, points, aggs),
            _ => unimplemented!("no ranged compute for this serve app"),
        }
    }
}

/// One job to serve, as plain data so every place rebuilds it
/// identically (the serve contract).
#[derive(Clone)]
struct ServeJobDef {
    name: String,
    app: AppChoice,
    vertices: u64,
    seed: u64,
    priority: u8,
}

/// Builds the app + pattern a job definition describes.
fn serve_app_for(def: &ServeJobDef) -> Result<(ServeJobApp, Box<dyn DagPattern>), String> {
    match def.app {
        AppChoice::Lcs => {
            let n = workload::side_for_vertices(def.vertices) as usize;
            let app = LcsApp::new(
                workload::letters(n, def.seed),
                workload::letters(n, def.seed + 1),
            );
            let pattern = app.pattern();
            Ok((ServeJobApp::Lcs(app), Box::new(pattern)))
        }
        AppChoice::EditDistance => {
            let n = workload::side_for_vertices(def.vertices) as usize;
            let app = EditDistanceApp::new(
                workload::letters(n, def.seed),
                workload::letters(n, def.seed + 1),
            );
            let pattern = app.pattern();
            Ok((ServeJobApp::EditDistance(app), Box::new(pattern)))
        }
        AppChoice::Lps => {
            let n = ((def.vertices as f64 * 2.0).sqrt() as usize).max(2);
            let app = LpsApp::new(workload::letters(n, def.seed));
            let pattern = app.pattern();
            Ok((ServeJobApp::Lps(app), Box::new(pattern)))
        }
        AppChoice::Nussinov => {
            let n = ((def.vertices as f64 * 2.0).sqrt() as usize).clamp(2, 512);
            let rna: Vec<u8> = workload::dna(n, def.seed)
                .into_iter()
                .map(|c| if c == b'T' { b'U' } else { c })
                .collect();
            let app = NussinovApp::new(rna);
            let pattern = app.pattern();
            Ok((ServeJobApp::Nussinov(app), Box::new(pattern)))
        }
        AppChoice::Lws => {
            let n = (def.vertices as u32).max(2);
            let app = LwsApp::new(n, def.seed);
            let pattern = app.pattern();
            Ok((ServeJobApp::Lws(app), Box::new(pattern)))
        }
        AppChoice::Gap => {
            let n = workload::side_for_vertices(def.vertices);
            let app = GapApp::new(n, n, def.seed);
            let pattern = app.pattern();
            Ok((ServeJobApp::Gap(app), Box::new(pattern)))
        }
        other => Err(format!(
            "app {} cannot be served (serve apps share one value type: lcs, edit-distance, lps, nussinov, lws, gap)",
            AppChoice::name(other)
        )),
    }
}

/// The job's solo oracle: the same app on a single-place threaded
/// engine, fingerprinted.
fn serve_solo_fingerprint(def: &ServeJobDef) -> Result<u64, String> {
    let (app, pattern) = serve_app_for(def)?;
    let result = ThreadedEngine::new(app, pattern, EngineConfig::flat(1))
        .run()
        .map_err(|e| format!("solo run of {}: {e}", def.name))?;
    Ok(result.fingerprint())
}

/// Parses a serve jobfile: `<app> <vertices> <seed> [priority]` per
/// line, `#` comments and blank lines skipped.
fn parse_jobfile(text: &str) -> Result<Vec<ServeJobDef>, String> {
    let mut defs = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 3 || fields.len() > 4 {
            return Err(format!(
                "jobfile line {}: expected `<app> <vertices> <seed> [priority]`, got `{line}`",
                lineno + 1
            ));
        }
        let app = AppChoice::ALL
            .iter()
            .find(|(name, _)| *name == fields[0])
            .map(|&(_, app)| app)
            .ok_or(format!(
                "jobfile line {}: unknown app {}",
                lineno + 1,
                fields[0]
            ))?;
        let vertices: u64 = fields[1]
            .parse()
            .map_err(|_| format!("jobfile line {}: bad vertices {}", lineno + 1, fields[1]))?;
        let seed: u64 = fields[2]
            .parse()
            .map_err(|_| format!("jobfile line {}: bad seed {}", lineno + 1, fields[2]))?;
        let priority: u8 = match fields.get(3) {
            Some(p) => p
                .parse()
                .map_err(|_| format!("jobfile line {}: bad priority {p}", lineno + 1))?,
            None => 0,
        };
        defs.push(ServeJobDef {
            name: format!("{}:{}", fields[0], defs.len()),
            app,
            vertices,
            seed,
            priority,
        });
    }
    if defs.is_empty() {
        return Err("jobfile has no jobs".into());
    }
    Ok(defs)
}

/// Job-level metrics of a finished serve, Prometheus-renderable.
fn build_serve_registry(report: &ServeReport<u32>) -> Registry {
    let reg = Registry::new();
    reg.counter(
        "dpx10_jobs_done_total",
        "jobs that completed with a result",
        &[],
    )
    .add(report.succeeded() as u64);
    reg.counter(
        "dpx10_jobs_failed_total",
        "jobs that ended in an error",
        &[],
    )
    .add((report.jobs.len() - report.succeeded()) as u64);
    reg.gauge(
        "dpx10_jobs_active_peak",
        "most jobs concurrently admitted on the shared mesh",
        &[],
    )
    .set(report.peak_in_flight as f64);
    for job in &report.jobs {
        reg.histogram_ns("dpx10_job_wait_ns", "submit-to-admission wait per job", &[])
            .observe(job.wait.as_nanos() as u64);
    }
    reg
}

/// The job list a serve invocation describes (jobfile or sweep), with
/// every app checked servable before any work starts.
fn serve_defs(args: &crate::args::ServeArgs) -> Result<Vec<ServeJobDef>, String> {
    let defs: Vec<ServeJobDef> = match &args.jobfile {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            parse_jobfile(&text)?
        }
        None => (0..args.jobs)
            .map(|k| ServeJobDef {
                name: format!("{}:{k}", args.app.name()),
                app: args.app,
                vertices: args.vertices,
                seed: args.seed.wrapping_add(u64::from(k)),
                priority: 0,
            })
            .collect(),
    };
    // Fail fast on un-servable apps before any thread spawns.
    for def in &defs {
        serve_app_for(def)?;
    }
    Ok(defs)
}

/// `dpx10 serve`: several DP jobs on one shared in-process socket mesh
/// (every place a thread, same idiom as `bench`). Jobs come from a
/// jobfile or a `--jobs N --app A` sweep; `--verify` re-runs every job
/// solo and errs on any fingerprint divergence.
pub fn run_serve(args: &crate::args::ServeArgs) -> Result<String, String> {
    if args.elastic {
        return run_serve_elastic(args);
    }
    let defs = serve_defs(args)?;

    let recorder = if args.trace_out.is_some() {
        Recorder::with_capacity(args.places as usize, 1 << 20)
    } else {
        Recorder::disabled()
    };
    let places = args.places;
    let max_in_flight = args.max_in_flight;
    let comms = args.comms;
    let build = {
        let defs = defs.clone();
        let recorder = recorder.clone();
        move || -> Result<dpx10_core::JobServer<ServeJobApp>, String> {
            let mut server = dpx10_core::JobServer::new()
                .with_max_in_flight(max_in_flight)
                .with_recorder(recorder.clone());
            for def in &defs {
                let (app, pattern) = serve_app_for(def)?;
                let mut config = EngineConfig {
                    topology: Topology::flat(places),
                    ..EngineConfig::paper(1)
                };
                config.comms = comms;
                server
                    .submit(
                        dpx10_core::JobSpec::new(def.name.clone(), app, pattern, config)
                            .with_priority(def.priority),
                    )
                    .map_err(|e| e.to_string())?;
            }
            Ok(server)
        }
    };

    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("no local addr: {e}"))?
        .to_string();
    let build = std::sync::Arc::new(build);
    let mut workers = Vec::new();
    for p in 1..places {
        let addr = addr.clone();
        let build = build.clone();
        workers.push(std::thread::spawn(move || -> Result<(), String> {
            match build()?.serve(SocketConfig::worker(PlaceId(p), places, addr)) {
                Ok(None) => Ok(()),
                Ok(Some(_)) => Err(format!("worker place {p} returned a report")),
                Err(e) => Err(format!("worker place {p}: {e}")),
            }
        }));
    }
    let outcome = build()
        .map_err(|e| e.to_string())?
        .serve(SocketConfig::coordinator(listener, places));
    for (idx, w) in workers.into_iter().enumerate() {
        w.join()
            .map_err(|_| format!("worker place {} panicked", idx + 1))??;
    }
    let report = outcome
        .map_err(|e| format!("coordinator failed: {e}"))?
        .ok_or("coordinator returned no report")?;

    let mut out = format!(
        "serve: {} job(s), {} places, admission cap {}\n",
        defs.len(),
        places,
        max_in_flight
    );
    let mut failures = Vec::new();
    for (job, def) in report.jobs.iter().zip(&defs) {
        match &job.result {
            Ok(result) => {
                let r = result.report();
                out.push_str(&format!(
                    "  {:<20} prio {}  wait {:>9?}  epochs {}  recoveries {}  fingerprint {:#018x}",
                    job.name,
                    job.priority,
                    job.wait,
                    r.epochs,
                    r.recoveries.len(),
                    result.fingerprint()
                ));
                if let Some(d) = &r.schedule_downgrade {
                    out.push_str(&format!(
                        "  [schedule {:?} -> {:?}]",
                        d.requested, d.effective
                    ));
                }
                if args.verify {
                    let solo = serve_solo_fingerprint(def)?;
                    if solo == result.fingerprint() {
                        out.push_str("  verified");
                    } else {
                        failures.push(format!(
                            "job {} fingerprint {:#018x} != solo {:#018x}",
                            job.name,
                            result.fingerprint(),
                            solo
                        ));
                        out.push_str("  MISMATCH");
                    }
                }
                out.push('\n');
            }
            Err(e) => {
                failures.push(format!("job {} failed: {e}", job.name));
                out.push_str(&format!(
                    "  {:<20} prio {}  FAILED: {e}\n",
                    job.name, job.priority
                ));
            }
        }
    }
    out.push_str(&format!(
        "done: {}/{} succeeded, peak {} in flight\n",
        report.succeeded(),
        report.jobs.len(),
        report.peak_in_flight
    ));
    if let Some(path) = &args.trace_out {
        let trace = recorder.drain();
        chrome::write(std::path::Path::new(path), &trace)
            .map_err(|e| format!("write trace {path}: {e}"))?;
        out.push_str(&format!("wrote {path}\n"));
    }
    if let Some(path) = &args.metrics_out {
        let registry = build_serve_registry(&report);
        std::fs::write(path, registry.render_prometheus())
            .map_err(|e| format!("write metrics {path}: {e}"))?;
        out.push_str(&format!("wrote {path}\n"));
    }
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }
    Ok(out)
}

/// Renders a mesh-size timeline (`3 -> 4 -> 5 -> 4 -> 3`) from the
/// report's membership-change samples.
fn mesh_timeline(founding: u16, sizes: &[(u64, u16)]) -> String {
    let mut out = founding.to_string();
    for &(_, n) in sizes {
        out.push_str(&format!(" -> {n}"));
    }
    out
}

/// `dpx10 serve --elastic`: the same job sweep, but on the elastic mesh.
/// Every job runs under a grow-and-drain churn plan — two places join
/// mid-sweep and drain back out before the job ends — with the chunks
/// they briefly owned shipped live, never recomputed. Every job's
/// fingerprint is compared against its solo run, so the membership
/// churn is proven invisible to the results.
fn run_serve_elastic(args: &crate::args::ServeArgs) -> Result<String, String> {
    if args.capacity < args.places + 2 {
        return Err(format!(
            "--elastic grows the mesh by 2 places mid-sweep: --capacity {} leaves no room above --places {}",
            args.capacity, args.places
        ));
    }
    let defs = serve_defs(args)?;
    let recorder = if args.trace_out.is_some() {
        Recorder::with_capacity(args.capacity as usize, 1 << 20)
    } else {
        Recorder::disabled()
    };
    let mut server = ElasticServer::new(args.places, args.capacity).with_recorder(recorder.clone());

    // Each job's plan: grow by two joiners early, drain them late. The
    // mesh returns to its founders between jobs, so the joiners always
    // receive the same two fresh place ids.
    let joiner_a = args.places;
    let joiner_b = args.places + 1;
    let ev = |at: f64, verb: ElasticVerb| ElasticEvent { at, verb };

    let mut out = format!(
        "serve (elastic): {} job(s), {} founding places, capacity {}\n",
        defs.len(),
        args.places,
        args.capacity
    );
    let mut failures = Vec::new();
    let mut totals = ElasticReport::default();
    for def in &defs {
        let plan = ElasticPlan {
            seed: def.seed,
            events: vec![
                ev(0.10, ElasticVerb::Join),
                ev(0.18, ElasticVerb::Join),
                ev(
                    0.55,
                    ElasticVerb::Drain {
                        place: PlaceId(joiner_a),
                    },
                ),
                ev(
                    0.70,
                    ElasticVerb::Drain {
                        place: PlaceId(joiner_b),
                    },
                ),
            ],
        };
        let (app, pattern) = serve_app_for(def)?;
        let run = server
            .run_job(app, pattern, plan)
            .map_err(|e| format!("job {}: {e}", def.name))?;
        let solo = serve_solo_fingerprint(def)?;
        let r = run.report();
        out.push_str(&format!(
            "  {:<20} fingerprint {:#018x}  mesh {}  relocated {} chunk(s) carrying {} cell(s)",
            def.name,
            run.fingerprint(),
            mesh_timeline(args.places, &r.mesh_sizes),
            r.chunks_relocated,
            r.cells_moved
        ));
        if run.fingerprint() == solo {
            out.push_str("  verified");
        } else {
            failures.push(format!(
                "job {} fingerprint {:#018x} != solo {:#018x}",
                def.name,
                run.fingerprint(),
                solo
            ));
            out.push_str("  MISMATCH");
        }
        out.push('\n');
        if r.chunks_relocated == 0 {
            failures.push(format!("job {} never relocated a chunk", def.name));
        }
        if r.recomputed > 0 {
            failures.push(format!(
                "job {} recomputed {} cell(s) under graceful churn",
                def.name, r.recomputed
            ));
        }
        if r.final_members.len() != args.places as usize {
            failures.push(format!(
                "job {} ended with members {:?}, expected the {} founders",
                def.name, r.final_members, args.places
            ));
        }
        totals.joins += r.joins;
        totals.drains += r.drains;
        totals.chunks_relocated += r.chunks_relocated;
        totals.cells_moved += r.cells_moved;
        totals.chunk_bytes += r.chunk_bytes;
        totals.recomputed += r.recomputed;
    }
    out.push_str(&format!(
        "done: {} job(s), {} joins, {} drains, {} chunks relocated ({} cells, {} bytes), {} recomputed\n",
        server.jobs_run(),
        totals.joins,
        totals.drains,
        totals.chunks_relocated,
        totals.cells_moved,
        totals.chunk_bytes,
        totals.recomputed
    ));
    if let Some(path) = &args.trace_out {
        let trace = recorder.drain();
        chrome::write(std::path::Path::new(path), &trace)
            .map_err(|e| format!("write trace {path}: {e}"))?;
        out.push_str(&format!("wrote {path}\n"));
    }
    if let Some(path) = &args.metrics_out {
        let reg = Registry::new();
        reg.gauge(
            "dpx10_mesh_size",
            "current member count of the elastic mesh",
            &[],
        )
        .set(server.members().len() as f64);
        reg.counter(
            "dpx10_chunks_relocated",
            "chunks shipped whole via live relocation",
            &[],
        )
        .add(totals.chunks_relocated);
        reg.counter(
            "dpx10_cells_moved_total",
            "finished cells carried inside relocated chunks",
            &[],
        )
        .add(totals.cells_moved);
        reg.counter(
            "dpx10_chunk_bytes_total",
            "encoded ChunkData payload bytes shipped",
            &[],
        )
        .add(totals.chunk_bytes);
        reg.counter("dpx10_joins_total", "places that joined mid-run", &[])
            .add(totals.joins);
        reg.counter("dpx10_drains_total", "graceful departures", &[])
            .add(totals.drains);
        reg.counter(
            "dpx10_jobs_done_total",
            "jobs that completed with a result",
            &[],
        )
        .add(server.jobs_run());
        std::fs::write(path, reg.render_prometheus())
            .map_err(|e| format!("write metrics {path}: {e}"))?;
        out.push_str(&format!("wrote {path}\n"));
    }
    if let Some(path) = &args.bench_out {
        out.push_str(&elastic_bench(&defs[0], args.places, args.capacity, path)?);
    }
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }
    Ok(out)
}

/// One elastic-bench mode as a JSON object string.
fn elastic_mode_json(r: &ElasticReport) -> String {
    format!(
        "{{ \"chunks_relocated\": {}, \"cells_moved\": {}, \"chunk_bytes\": {}, \"computed\": {}, \"recomputed\": {} }}",
        r.chunks_relocated, r.cells_moved, r.chunk_bytes, r.computed, r.recomputed
    )
}

/// The relocation benchmark: the same job loses place 1 at half
/// progress, once as a graceful drain (chunks relocate live) and once
/// as an abrupt kill (the paper's §VI-D recompute path). Both must
/// produce the solo fingerprint; the JSON records what relocation
/// saved.
fn elastic_bench(
    def: &ServeJobDef,
    places: u16,
    capacity: u16,
    path: &str,
) -> Result<String, String> {
    let ev = |at: f64, verb: ElasticVerb| ElasticEvent { at, verb };
    let run_mode = |verb: ElasticVerb| -> Result<ElasticReport, String> {
        let (app, pattern) = serve_app_for(def)?;
        let plan = ElasticPlan {
            seed: def.seed,
            events: vec![ev(0.50, verb)],
        };
        let run = ElasticEngine::new(app, pattern, ElasticConfig::new(places, capacity))
            .with_plan(plan)
            .run()
            .map_err(|e| format!("bench {}: {e}", def.name))?;
        let solo = serve_solo_fingerprint(def)?;
        if run.fingerprint() != solo {
            return Err(format!(
                "bench {} fingerprint {:#018x} != solo {:#018x}",
                def.name,
                run.fingerprint(),
                solo
            ));
        }
        Ok(run.report().clone())
    };
    let drain = run_mode(ElasticVerb::Drain { place: PlaceId(1) })?;
    let kill = run_mode(ElasticVerb::Kill { place: PlaceId(1) })?;
    let cells_saved = kill.recomputed.saturating_sub(drain.recomputed);
    let json = format!(
        "{{\n  \"app\": \"{}\",\n  \"vertices\": {},\n  \"seed\": {},\n  \"places\": {places},\n  \"capacity\": {capacity},\n  \"scenario\": \"place 1 leaves at 50% progress\",\n  \"drain_and_rebalance\": {},\n  \"kill_and_recompute\": {},\n  \"cells_saved_by_relocation\": {cells_saved}\n}}\n",
        def.app.name(),
        def.vertices,
        def.seed,
        elastic_mode_json(&drain),
        elastic_mode_json(&kill),
    );
    std::fs::write(path, &json).map_err(|e| format!("write {path}: {e}"))?;
    Ok(format!(
        "bench: drain relocated {} chunk(s) ({} cells, 0 recomputed); kill recomputed {} cell(s); relocation saved {cells_saved} cell(s)\nwrote {path}\n",
        drain.chunks_relocated, drain.cells_moved, kill.recomputed
    ))
}

/// `dpx10 join`: dials a running socket mesh's coordinator, completes
/// the join handshake, reports the assigned place and live roster, then
/// drains back out gracefully.
pub fn run_join(coordinator: &str) -> Result<String, String> {
    let node = SocketNode::join(JoinConfig::new(coordinator))
        .map_err(|e| format!("join {coordinator}: {e}"))?;
    let roster = node.roster();
    let members: Vec<String> = roster.members().iter().map(|p| p.0.to_string()).collect();
    let out = format!(
        "joined mesh at {coordinator} as place {}\n\
         mesh: {} live member(s) of capacity {} (roster v{})\n\
         members: {}\n\
         draining back out (this probe holds no chunks)\n",
        node.me().0,
        members.len(),
        node.capacity(),
        roster.version(),
        members.join(" ")
    );
    node.drain();
    Ok(out)
}

/// `dpx10 apps`: one line per application.
pub fn list_apps() -> String {
    let mut out = String::from("applications (paper SVIII + extensions):\n");
    let note = |app: AppChoice| match app {
        AppChoice::Swlag => "Smith-Waterman, linear+affine gap (paper headline app)",
        AppChoice::SwLinear => "Smith-Waterman, linear gap (paper Fig. 7 demo)",
        AppChoice::Mtp => "Manhattan Tourists Problem",
        AppChoice::Lps => "Longest Palindromic Subsequence",
        AppChoice::Knapsack => "0/1 Knapsack (custom data-dependent pattern)",
        AppChoice::Lcs => "Longest Common Subsequence (paper Fig. 1 walk-through)",
        AppChoice::EditDistance => "Levenshtein distance (extension)",
        AppChoice::NeedlemanWunsch => "global alignment (extension)",
        AppChoice::Nussinov => "RNA folding, 2D/1D interval-splits (extension)",
        AppChoice::Lws => "Least-Weight Subsequence, interval deps + prefix-min (extension)",
        AppChoice::Gap => "general gap penalties, row+col interval deps (extension)",
    };
    for (_, app) in AppChoice::ALL {
        out.push_str(&format!("  {:<18} {}\n", app.name(), note(app)));
    }
    out
}

/// `dpx10 patterns`: analysis of the built-in library at a given size.
pub fn list_patterns(height: u32, width: u32) -> String {
    let mut out = format!(
        "built-in DAG patterns at {height}x{width} (paper Fig. 5 a-h):\n{:<20} {:>9} {:>14} {:>17}\n",
        "pattern", "vertices", "critical path", "peak parallelism"
    );
    for kind in BuiltinKind::ALL {
        let p = kind.instantiate(height, width);
        let profile = wavefront_profile(&p);
        out.push_str(&format!(
            "{:<20} {:>9} {:>14} {:>17}\n",
            p.name(),
            p.vertex_count(),
            critical_path_len(&p),
            profile.iter().copied().max().unwrap_or(0),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::RunArgs;

    #[test]
    fn every_app_runs_small_on_sim() {
        for (_, app) in AppChoice::ALL {
            let args = RunArgs {
                app,
                vertices: 2_000,
                nodes: 2,
                ..RunArgs::default()
            };
            let summary = run(&args, &[]).unwrap_or_else(|e| panic!("{app:?}: {e}"));
            assert!(!summary.answer.is_empty());
            assert!(summary.report.sim_time > Duration::ZERO, "{app:?}");
        }
    }

    #[test]
    fn threaded_engine_runs_too() {
        let args = RunArgs {
            app: AppChoice::Lcs,
            engine: EngineChoice::Threaded,
            vertices: 2_500,
            places: 2,
            ..RunArgs::default()
        };
        let summary = run(&args, &[]).unwrap();
        assert!(summary.answer.starts_with("LCS length"));
        assert!(summary.render().contains("wall time"));
    }

    #[test]
    fn fault_run_reports_recovery() {
        let args = RunArgs {
            app: AppChoice::Mtp,
            vertices: 10_000,
            nodes: 2,
            fault: Some((dpx10_apgas::PlaceId(3), 0.5)),
            ..RunArgs::default()
        };
        let summary = run(&args, &[]).unwrap();
        assert_eq!(summary.report.recoveries.len(), 1);
        assert!(summary.render().contains("recovery #0"));
    }

    #[test]
    fn timeline_requested_is_rendered() {
        let args = RunArgs {
            app: AppChoice::Swlag,
            vertices: 5_000,
            nodes: 2,
            timeline: true,
            ..RunArgs::default()
        };
        let summary = run(&args, &[]).unwrap();
        let text = summary.render();
        assert!(text.contains("activity timeline"));
        assert!(text.contains("place   0 |"));
    }

    #[test]
    fn listings_are_complete() {
        let apps = list_apps();
        for (name, _) in AppChoice::ALL {
            assert!(apps.contains(name), "{name} missing from listing");
        }
        let pats = list_patterns(12, 12);
        assert!(pats.contains("grid3"));
        assert!(pats.contains("interval-upper"));
        assert_eq!(pats.lines().count(), 2 + 8);
    }
}

//! End-to-end tests of `dpx10 run --backend sockets`: real place
//! processes, a real TCP mesh, and a real `SIGKILL` aimed at a worker
//! mid-run.

use std::io::{BufRead, BufReader, Read};
use std::process::{Command, Stdio};
use std::time::Duration;

fn dpx10(args: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dpx10"));
    cmd.args(args);
    cmd
}

/// Runs the CLI to completion and returns stdout.
fn run_ok(args: &[&str]) -> String {
    let out = dpx10(args).output().expect("spawn dpx10");
    assert!(
        out.status.success(),
        "dpx10 {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

fn answer_line(stdout: &str) -> &str {
    stdout
        .lines()
        .find(|l| l.starts_with("answer: "))
        .unwrap_or_else(|| panic!("no answer line in {stdout:?}"))
}

fn vertices_line(stdout: &str) -> &str {
    stdout
        .lines()
        .find(|l| l.starts_with("vertices: "))
        .unwrap_or_else(|| panic!("no vertices line in {stdout:?}"))
}

/// The four paper applications must produce the same answer on the
/// multi-process socket backend, the in-process threaded backend and
/// the deterministic simulator (the serial oracle).
#[test]
fn paper_apps_agree_across_backends() {
    for app in ["swlag", "mtp", "lps", "knapsack"] {
        let common = ["--vertices", "20000", "--seed", "7"];
        let sockets = run_ok(
            &[
                &["run", app, "--backend", "sockets", "--places", "4"],
                &common[..],
            ]
            .concat(),
        );
        let threaded = run_ok(
            &[
                &["run", app, "--backend", "threads", "--places", "4"],
                &common[..],
            ]
            .concat(),
        );
        let sim = run_ok(&[&["run", app, "--backend", "sim"], &common[..]].concat());
        assert_eq!(
            answer_line(&sockets),
            answer_line(&threaded),
            "{app}: sockets vs threads"
        );
        assert_eq!(
            answer_line(&sockets),
            answer_line(&sim),
            "{app}: sockets vs sim"
        );
        assert_eq!(
            vertices_line(&sockets),
            vertices_line(&threaded),
            "{app}: both real backends compute every vertex once"
        );
    }
}

/// `--fault P:F` on the socket backend makes the victim process abort
/// for real; the run must still finish with the fault-free answer.
#[test]
fn planned_fault_on_sockets_recovers_to_the_fault_free_answer() {
    let clean = run_ok(&[
        "run",
        "lps",
        "--backend",
        "sockets",
        "--places",
        "4",
        "--vertices",
        "20000",
    ]);
    let faulted = run_ok(&[
        "run",
        "lps",
        "--backend",
        "sockets",
        "--places",
        "4",
        "--vertices",
        "20000",
        "--fault",
        "3:0.5",
    ]);
    assert_eq!(answer_line(&clean), answer_line(&faulted));
    assert!(
        faulted.contains("recovery #0"),
        "no recovery in {faulted:?}"
    );
}

/// Kills a worker place with `SIGKILL` mid-run. The survivors must
/// detect the dead peer, recover, and finish with the same answer as a
/// fault-free run.
#[test]
fn sigkill_mid_run_recovers_and_matches_fault_free() {
    let args = [
        "run",
        "mtp",
        "--backend",
        "sockets",
        "--places",
        "4",
        "--vertices",
        "500000",
        "--seed",
        "3",
    ];
    let clean = run_ok(&args);

    let mut child = dpx10(&args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn dpx10");

    // Hang insurance: SIGKILL the whole run if it wedges.
    let coordinator_pid = child.id();
    let watchdog = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_secs(120));
        let _ = Command::new("kill")
            .args(["-9", &coordinator_pid.to_string()])
            .status();
    });

    // The launcher announces every worker as `dpx10: place P pid N` on
    // stderr before the computation starts.
    let mut stderr = BufReader::new(child.stderr.take().expect("piped stderr"));
    let victim_pid = loop {
        let mut line = String::new();
        assert_ne!(
            stderr.read_line(&mut line).expect("read stderr"),
            0,
            "stderr closed"
        );
        let words: Vec<&str> = line.split_whitespace().collect();
        if let ["dpx10:", "place", "2", "pid", pid] = words[..] {
            break pid.to_string();
        }
    };

    // Past mesh formation, into the computation proper (the full run
    // takes seconds), then kill -9 the worker.
    std::thread::sleep(Duration::from_millis(400));
    // On fast hosts (release builds) the whole run can finish before
    // the sleep elapses; the kill then misses. That degrades the test
    // to a fault-free equivalence check instead of failing it.
    let killed = Command::new("kill")
        .args(["-9", &victim_pid])
        .status()
        .expect("run kill");

    let mut rest = String::new();
    stderr.read_to_string(&mut rest).expect("drain stderr");
    let out = child.wait_with_output().expect("wait dpx10");
    drop(watchdog); // detached; the process tree is gone before it fires
    assert!(
        out.status.success(),
        "run died after SIGKILL of place 2:\nstderr: {rest}"
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    assert_eq!(
        answer_line(&clean),
        answer_line(&stdout),
        "recovered answer differs from fault-free"
    );
    if killed.success() {
        assert!(
            stdout.contains("recovery #0"),
            "no recovery reported in {stdout:?}"
        );
    }
}

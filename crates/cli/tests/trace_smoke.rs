//! Traced-run smoke tests: every backend must emit a Perfetto-loadable
//! Chrome trace and a Prometheus metrics file, and `dpx10 trace
//! summarize` must accept the trace (parse + span-nesting oracle).

use std::path::PathBuf;
use std::process::Command;

use dpx10_obs::chrome;

fn dpx10(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dpx10"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Unique temp path per test so parallel test threads don't collide.
fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dpx10-trace-smoke-{}-{name}", std::process::id()))
}

/// Runs swlag on `engine_args` with observability on, then checks the
/// trace parses, spans nest, `trace summarize` accepts it, and the
/// metrics file carries the core series.
fn traced_run(label: &str, engine_args: &[&str]) {
    let trace = tmp(&format!("{label}.json"));
    let prom = tmp(&format!("{label}.prom"));
    let trace_s = trace.to_str().unwrap().to_string();
    let prom_s = prom.to_str().unwrap().to_string();

    let mut args = vec!["run", "swlag", "--vertices", "4000"];
    args.extend_from_slice(engine_args);
    args.extend_from_slice(&["--trace-out", &trace_s, "--metrics-out", &prom_s]);
    let (code, stdout, stderr) = dpx10(&args);
    assert_eq!(code, 0, "{label}: stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("answer:"), "{label}: {stdout}");

    // The Chrome JSON must parse and its spans must nest.
    let json = std::fs::read_to_string(&trace).expect("trace file written");
    let events = chrome::parse(&json).unwrap_or_else(|e| panic!("{label}: {e}"));
    assert!(
        events.iter().any(|e| e.name == "vertex-compute"),
        "{label}: no vertex-compute events"
    );
    chrome::check_nesting(&events).unwrap_or_else(|e| panic!("{label}: {e}"));

    // `dpx10 trace summarize` agrees and prints the phase table.
    let (code, summary, stderr) = dpx10(&["trace", "summarize", &trace_s]);
    assert_eq!(code, 0, "{label}: {stderr}");
    assert!(
        summary.contains("spans nest correctly"),
        "{label}: {summary}"
    );
    assert!(summary.contains("vertex-compute"), "{label}: {summary}");

    // The Prometheus file carries the core series.
    let metrics = std::fs::read_to_string(&prom).expect("metrics file written");
    for series in [
        "dpx10_vertices_computed_total",
        "dpx10_epochs_total",
        "dpx10_place_busy_seconds{slot=\"0\"}",
        "dpx10_compute_ns_bucket",
        "# TYPE dpx10_compute_ns histogram",
    ] {
        assert!(
            metrics.contains(series),
            "{label}: missing {series}:\n{metrics}"
        );
    }

    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&prom);
}

#[test]
fn sim_traced_run_smokes() {
    traced_run("sim", &["--nodes", "2"]);
}

#[test]
fn threaded_traced_run_smokes() {
    traced_run("thr", &["--engine", "threaded", "--places", "2"]);
}

#[test]
fn sockets_traced_run_smokes() {
    let label = "sock";
    let trace = tmp(&format!("{label}.json"));
    let prom = tmp(&format!("{label}.prom"));
    let trace_s = trace.to_str().unwrap().to_string();
    let prom_s = prom.to_str().unwrap().to_string();

    let (code, stdout, stderr) = dpx10(&[
        "run",
        "swlag",
        "--vertices",
        "4000",
        "--engine",
        "sockets",
        "--places",
        "2",
        "--trace-out",
        &trace_s,
        "--metrics-out",
        &prom_s,
    ]);
    assert_eq!(code, 0, "stdout: {stdout}\nstderr: {stderr}");

    // Coordinator writes `trace`; the spawned worker writes `trace.p1`.
    let worker = PathBuf::from(format!("{trace_s}.p1"));
    for (who, path) in [("coordinator", &trace), ("worker", &worker)] {
        let json =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{who} trace missing: {e}"));
        let events = chrome::parse(&json).unwrap_or_else(|e| panic!("{who}: {e}"));
        chrome::check_nesting(&events).unwrap_or_else(|e| panic!("{who}: {e}"));
        assert!(
            events.iter().any(|e| e.name == "vertex-compute"),
            "{who}: no vertex-compute events"
        );
    }

    // Both places contribute busy time to the coordinator's metrics.
    let metrics = std::fs::read_to_string(&prom).expect("metrics file written");
    assert!(
        metrics.contains("dpx10_place_busy_seconds{slot=\"0\"}"),
        "{metrics}"
    );
    assert!(
        metrics.contains("dpx10_place_busy_seconds{slot=\"1\"}"),
        "{metrics}"
    );

    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&worker);
    let _ = std::fs::remove_file(&prom);
}

#[test]
fn summarize_rejects_malformed_files() {
    let path = tmp("garbage.json");
    std::fs::write(&path, "this is not json").unwrap();
    let (code, _, stderr) = dpx10(&["trace", "summarize", path.to_str().unwrap()]);
    assert_eq!(code, 1);
    assert!(stderr.contains("error"), "{stderr}");
    let _ = std::fs::remove_file(&path);

    let (code, _, stderr) = dpx10(&["trace", "summarize", "/nonexistent/trace.json"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("read"), "{stderr}");
}

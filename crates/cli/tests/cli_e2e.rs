//! End-to-end tests of the `dpx10` binary itself.

use std::process::Command;

fn dpx10(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dpx10"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_exits_zero() {
    let (code, stdout, _) = dpx10(&["help"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("swlag"));
}

#[test]
fn apps_and_patterns_list() {
    let (code, stdout, _) = dpx10(&["apps"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("knapsack"));

    let (code, stdout, _) = dpx10(&["patterns", "--size", "10x10"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("grid3"));
    assert!(stdout.contains("critical path"));
}

#[test]
fn run_small_sim_succeeds() {
    let (code, stdout, stderr) = dpx10(&["run", "lcs", "--vertices", "2000", "--nodes", "2"]);
    assert_eq!(code, 0, "stderr: {stderr}");
    assert!(stdout.contains("answer: LCS length"));
    assert!(stdout.contains("simulated makespan"));
}

#[test]
fn run_with_fault_reports_recovery() {
    let (code, stdout, stderr) = dpx10(&[
        "run",
        "mtp",
        "--vertices",
        "5000",
        "--nodes",
        "2",
        "--fault",
        "3",
    ]);
    assert_eq!(code, 0, "stderr: {stderr}");
    assert!(stdout.contains("recovery #0"), "{stdout}");
    assert!(stdout.contains("2 epochs"), "{stdout}");
}

#[test]
fn bad_flags_exit_nonzero_with_usage() {
    let (code, _, stderr) = dpx10(&["run", "lcs", "--engine", "quantum"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("unknown engine"));
    assert!(stderr.contains("USAGE"));

    let (code, _, stderr) = dpx10(&["frobnicate"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn timeline_flag_prints_timeline() {
    let (code, stdout, _) = dpx10(&[
        "run",
        "swlag",
        "--vertices",
        "4000",
        "--nodes",
        "2",
        "--timeline",
    ]);
    assert_eq!(code, 0);
    assert!(stdout.contains("activity timeline"));
}

#[test]
fn chaos_sweep_is_bit_for_bit_reproducible() {
    // Sockets excluded to keep this fast; determinism must hold anyway.
    let args = ["chaos", "--start", "2", "--count", "2", "--no-sockets"];
    let (code_a, out_a, _) = dpx10(&args);
    let (code_b, out_b, _) = dpx10(&args);
    assert_eq!(code_a, 0, "{out_a}");
    assert_eq!(code_b, 0);
    assert_eq!(out_a, out_b, "chaos output must not depend on timing");
    assert!(out_a.contains("chaos: 2 seed(s), 2 passed, 0 failed"));
}

#[test]
fn chaos_rejects_a_zero_count() {
    let (code, _, stderr) = dpx10(&["chaos", "--count", "0"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("count"));
}

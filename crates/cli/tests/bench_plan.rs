//! End-to-end tests of `dpx10 bench` plan mode and the ratchet exit
//! codes, driving the real binary. Each test works in its own temp
//! directory so registry/baseline files never collide; the committed
//! pinned plan is exercised at a reduced scale through an equivalent
//! generated plan to keep the suite fast.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn dpx10_in(dir: &PathBuf, envs: &[(&str, &str)], args: &[&str]) -> (i32, String, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dpx10"));
    cmd.current_dir(dir).args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// A fresh working dir holding a small 3-backend plan (the pinned
/// plan's shape at test scale).
fn plan_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dpx10-bench-plan-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    fs::write(
        dir.join("plan.toml"),
        "name = \"small\"\nseed = 1\n\n[grid]\nbackend = [\"sim\", \"threads\", \"sockets\"]\n\
         pattern = [\"lcs\"]\nvertices = [900]\nplaces = [2]\ncoalesce = [\"off\", 4096]\n\
         tile = [1]\ncache = [4096]\n\n[fixed]\ndist = \"cyclic-col\"\nschedule = \"local\"\n",
    )
    .unwrap();
    dir
}

#[test]
fn plan_run_is_deterministic_and_appends_registry() {
    let dir = plan_dir("determinism");
    let args = [
        "bench",
        "--plan",
        "plan.toml",
        "--ratchet",
        "--update-baseline",
    ];
    let (code, first, stderr) = dpx10_in(&dir, &[], &args);
    assert_eq!(code, 0, "stderr: {stderr}");
    assert!(first.contains("baseline created"), "{first}");
    // Second run ratchets against the freshly committed baseline; its
    // stdout (fingerprints + deterministic KPIs) must be byte-identical
    // apart from the ratchet line, which flips from "created" to PASS.
    let (code, second, stderr) =
        dpx10_in(&dir, &[], &["bench", "--plan", "plan.toml", "--ratchet"]);
    assert_eq!(code, 0, "stderr: {stderr}");
    let cells = |s: &str| -> Vec<String> {
        s.lines()
            .filter(|l| l.contains("  fp 0x"))
            .map(str::to_string)
            .collect()
    };
    assert_eq!(cells(&first), cells(&second));
    assert_eq!(cells(&first).len(), 6);
    assert!(
        second.contains("ratchet: PASS, 6 cells within tolerance"),
        "{second}"
    );
    // Third run, plain --ratchet again: fully identical stdout.
    let (code, third, _) = dpx10_in(&dir, &[], &["bench", "--plan", "plan.toml", "--ratchet"]);
    assert_eq!(code, 0);
    assert_eq!(
        second, third,
        "two consecutive ratchet runs print identical stdout"
    );
    // The registry accumulated one row set per run, all under the
    // committed header.
    let registry = fs::read_to_string(dir.join("results/registry.csv")).unwrap();
    let mut lines = registry.lines();
    assert!(lines.next().unwrap().starts_with("plan,cell,prov,"));
    assert_eq!(registry.lines().count(), 1 + 3 * 6);
    for row in registry.lines().skip(1) {
        assert!(row.starts_with("small,"), "{row}");
        assert!(row.contains(",run,"), "provenance source column: {row}");
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn injected_wall_breach_fails_the_ratchet() {
    let dir = plan_dir("breach");
    let (code, _, stderr) = dpx10_in(
        &dir,
        &[],
        &[
            "bench",
            "--plan",
            "plan.toml",
            "--ratchet",
            "--update-baseline",
        ],
    );
    assert_eq!(code, 0, "stderr: {stderr}");
    // A deliberate wall-time blowup (far past the 2x-style tolerance)
    // must make the command fail with a regression diagnostic.
    let (code, _, stderr) = dpx10_in(
        &dir,
        &[("DPX10_BENCH_WALL_SCALE", "1000")],
        &["bench", "--plan", "plan.toml", "--ratchet"],
    );
    assert_eq!(code, 1, "stderr: {stderr}");
    assert!(stderr.contains("perf ratchet FAILED"), "{stderr}");
    assert!(stderr.contains("wall_us"), "{stderr}");
    assert!(stderr.contains("exceeds baseline"), "{stderr}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn ratchet_without_baseline_is_an_error_and_update_creates_it() {
    let dir = plan_dir("no-baseline");
    let (code, _, stderr) = dpx10_in(&dir, &[], &["bench", "--plan", "plan.toml", "--ratchet"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("--update-baseline"), "{stderr}");
    let (code, stdout, _) = dpx10_in(
        &dir,
        &[],
        &[
            "bench",
            "--plan",
            "plan.toml",
            "--ratchet",
            "--update-baseline",
        ],
    );
    assert_eq!(code, 0);
    assert!(
        stdout.contains("baseline created at plans/baselines/small.toml"),
        "{stdout}"
    );
    let baseline = fs::read_to_string(dir.join("plans/baselines/small.toml")).unwrap();
    assert!(baseline.contains("plan = \"small\""));
    assert!(baseline.contains("plan_digest"));
    assert!(
        baseline.contains("[cells.\"sim/lcs/v900/p2/coff/t1/k4096\"]"),
        "{baseline}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn malformed_plan_and_baseline_diagnose() {
    let dir = plan_dir("malformed");
    fs::write(
        dir.join("bad-plan.toml"),
        "name = \"x\"\n[grid]\nbakend = [\"sim\"]\n",
    )
    .unwrap();
    let (code, _, stderr) = dpx10_in(&dir, &[], &["bench", "--plan", "bad-plan.toml"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("unknown grid axis `bakend`"), "{stderr}");
    fs::create_dir_all(dir.join("plans/baselines")).unwrap();
    fs::write(dir.join("plans/baselines/small.toml"), "plan = 7\n").unwrap();
    let (code, _, stderr) = dpx10_in(&dir, &[], &["bench", "--plan", "plan.toml", "--ratchet"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("plans/baselines/small.toml"), "{stderr}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn comms_baseline_exits_nonzero_on_fingerprint_mismatch() {
    // The off-vs-on equivalence check is a contract, not a warning: a
    // forced mismatch (test hook) must fail the whole command.
    let dir = plan_dir("fp-mismatch");
    let args = [
        "bench",
        "--vertices",
        "2000",
        "--places",
        "2",
        "--out",
        "bench.json",
    ];
    let (code, _, stderr) = dpx10_in(&dir, &[("DPX10_BENCH_FORCE_FP_MISMATCH", "1")], &args);
    assert_eq!(code, 1, "a fingerprint mismatch must exit nonzero");
    assert!(stderr.contains("coalescing changed the result"), "{stderr}");
    // The failed run bails before writing the JSON comparison…
    assert!(!dir.join("bench.json").exists());
    // …while the same invocation without the fault hook passes.
    let (code, stdout, stderr) = dpx10_in(&dir, &[], &args);
    assert_eq!(code, 0, "stderr: {stderr}");
    assert!(stdout.contains("fingerprints match"), "{stdout}");
    assert!(dir.join("bench.json").exists());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn trend_artifact_aggregates_registry() {
    let dir = plan_dir("trend");
    let (code, _, stderr) = dpx10_in(
        &dir,
        &[],
        &["bench", "--plan", "plan.toml", "--trend", "trend.json"],
    );
    assert_eq!(code, 0, "stderr: {stderr}");
    let (code, stdout, stderr) = dpx10_in(
        &dir,
        &[],
        &["bench", "--plan", "plan.toml", "--trend", "trend.json"],
    );
    assert_eq!(code, 0, "stderr: {stderr}");
    assert!(stdout.contains("trend: trend.json"), "{stdout}");
    let trend = fs::read_to_string(dir.join("trend.json")).unwrap();
    assert!(trend.contains("\"runs\": 2"), "{trend}");
    assert!(
        trend.contains("small/sim/lcs/v900/p2/coff/t1/k4096"),
        "{trend}"
    );
    let _ = fs::remove_dir_all(&dir);
}

//! Differential and behavioural tests of the simulator: results must
//! match a serial oracle (and hence the threaded engine, which is tested
//! against the same oracle); makespans must be deterministic and move in
//! the directions the paper's figures show.

use std::time::Duration;

use dpx10_core::{DepView, DistKind, DpApp, PlaceId, ScheduleStrategy};
use dpx10_dag::{builtin::*, topological_order, DagPattern, KnapsackDag, VertexId};
use dpx10_sim::{CostModel, SimConfig, SimEngine, SimFaultPlan};

struct MixApp;

impl DpApp for MixApp {
    type Value = u64;
    fn compute(&self, id: VertexId, deps: &DepView<'_, u64>) -> u64 {
        let mut acc = 0x9E37_79B9_u64.wrapping_mul(id.pack() | 1).rotate_left(7);
        for (did, v) in deps.iter() {
            acc = acc
                .wrapping_add(v.rotate_left((did.i % 31) + 1))
                .wrapping_mul(0x100_0000_01B3);
        }
        acc
    }
}

fn oracle<P: DagPattern>(pattern: &P) -> std::collections::HashMap<VertexId, u64> {
    let order = topological_order(pattern).expect("acyclic");
    let mut out = std::collections::HashMap::new();
    let mut deps = Vec::new();
    for id in order {
        deps.clear();
        pattern.dependencies(id.i, id.j, &mut deps);
        let vals: Vec<u64> = deps.iter().map(|d| out[d]).collect();
        out.insert(id, MixApp.compute(id, &DepView::new(&deps, &vals)));
    }
    out
}

fn check(pattern: impl DagPattern + Clone + 'static, config: SimConfig) -> Duration {
    let expect = oracle(&pattern);
    let result = SimEngine::new(MixApp, pattern, config)
        .run()
        .expect("completes");
    for (id, v) in &expect {
        assert_eq!(result.try_get(id.i, id.j).as_ref(), Some(v), "{id}");
    }
    result.report().sim_time
}

#[test]
fn matches_oracle_across_patterns_and_distributions() {
    for kind in dpx10_dag::BuiltinKind::ALL {
        check(
            KindWrap(kind, 9, 9),
            SimConfig::flat(3).with_dist(DistKind::BlockRow),
        );
    }
    check(
        Grid3::new(15, 11),
        SimConfig::flat(4).with_dist(DistKind::CyclicCol),
    );
    check(
        KnapsackDag::new(vec![3, 1, 4, 1, 5], 16),
        SimConfig::flat(3).with_dist(DistKind::BlockRow),
    );
}

/// Adapter: lets a `BuiltinKind` act as a cloneable pattern for `check`.
#[derive(Clone)]
struct KindWrap(dpx10_dag::BuiltinKind, u32, u32);

impl DagPattern for KindWrap {
    fn height(&self) -> u32 {
        self.0.instantiate(self.1, self.2).height()
    }
    fn width(&self) -> u32 {
        self.0.instantiate(self.1, self.2).width()
    }
    fn contains(&self, i: u32, j: u32) -> bool {
        self.0.instantiate(self.1, self.2).contains(i, j)
    }
    fn dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
        self.0.instantiate(self.1, self.2).dependencies(i, j, out)
    }
    fn anti_dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
        self.0
            .instantiate(self.1, self.2)
            .anti_dependencies(i, j, out)
    }
    fn vertex_count(&self) -> u64 {
        self.0.instantiate(self.1, self.2).vertex_count()
    }
}

#[test]
fn all_schedulers_match_oracle() {
    for strat in ScheduleStrategy::ALL {
        // Work stealing falls back to local in the simulator's dispatch.
        check(Grid3::new(12, 12), SimConfig::flat(3).with_schedule(strat));
    }
}

#[test]
fn zero_cache_still_correct() {
    check(
        Grid3::new(10, 10),
        SimConfig::flat(4)
            .with_cache(0)
            .with_dist(DistKind::CyclicCol),
    );
}

#[test]
fn deterministic_makespan() {
    let a = check(Grid3::new(20, 20), SimConfig::paper(2));
    let b = check(Grid3::new(20, 20), SimConfig::paper(2));
    assert_eq!(a, b, "identical configs must give identical makespans");
}

#[test]
fn more_nodes_speed_up_grid_wavefront() {
    // The Fig. 10 direction: a 300×300 grid3 should get faster from 1 to
    // 4 nodes (paper-shaped places).
    let t1 = check(Grid3::new(300, 300), SimConfig::paper(1));
    let t4 = check(Grid3::new(300, 300), SimConfig::paper(4));
    assert!(t4 < t1, "4 nodes ({t4:?}) should beat 1 node ({t1:?})");
}

#[test]
fn makespan_grows_with_size() {
    // The Fig. 11 direction: linear-ish growth with vertex count.
    let t1 = check(Grid3::new(100, 100), SimConfig::paper(2));
    let t4 = check(Grid3::new(200, 200), SimConfig::paper(2));
    assert!(t4 > t1);
}

#[test]
fn makespan_at_least_critical_path() {
    let n = 64;
    let t = check(Grid3::new(n, n), SimConfig::paper(4));
    let per_vertex = CostModel::default().compute + CostModel::default().framework_overhead;
    let lower_bound = per_vertex * (2 * n - 1);
    assert!(
        t >= lower_bound,
        "makespan {t:?} below the dependency-chain bound {lower_bound:?}"
    );
}

#[test]
fn fault_recovery_correct_and_costly() {
    let pattern = Grid3::new(40, 40);
    let expect = oracle(&pattern);
    let clean = SimEngine::new(MixApp, pattern, SimConfig::flat(4))
        .run()
        .unwrap();
    let pattern = Grid3::new(40, 40);
    let faulty = SimEngine::new(
        MixApp,
        pattern,
        SimConfig::flat(4).with_fault(SimFaultPlan::mid_run(PlaceId(3))),
    )
    .run()
    .unwrap();
    for (id, v) in &expect {
        assert_eq!(faulty.try_get(id.i, id.j).as_ref(), Some(v), "{id}");
    }
    let (cr, fr) = (clean.report(), faulty.report());
    assert_eq!(fr.epochs, 2);
    assert_eq!(fr.recoveries.len(), 1);
    assert!(fr.sim_time > cr.sim_time, "a fault must cost time");
    assert!(fr.vertices_computed >= cr.vertices_computed);
}

#[test]
fn fault_on_place_zero_rejected() {
    let engine = SimEngine::new(
        MixApp,
        Grid2::new(4, 4),
        SimConfig::flat(2).with_fault(SimFaultPlan::mid_run(PlaceId(0))),
    );
    assert!(engine.run().is_err());
}

#[test]
fn comm_counters_track_boundary_traffic() {
    let result = SimEngine::new(
        MixApp,
        Grid3::new(30, 30),
        SimConfig::flat(3).with_dist(DistKind::BlockCol),
    )
    .run()
    .unwrap();
    let comm = result.report().comm;
    assert!(comm.messages_sent > 0);
    assert!(
        comm.bytes_sent > comm.messages_sent,
        "payloads are > 1 byte"
    );
    // Two column boundaries × 30 rows, each crossing pushes Done msgs.
    assert!(comm.messages_sent >= 58);
}

#[test]
fn single_place_has_no_communication() {
    let result = SimEngine::new(MixApp, Grid3::new(20, 20), SimConfig::flat(1))
        .run()
        .unwrap();
    assert_eq!(result.report().comm.messages_sent, 0);
    assert_eq!(result.report().comm.bytes_sent, 0);
}

#[test]
fn interval_pattern_runs_masked() {
    let result = SimEngine::new(MixApp, IntervalUpper::new(12), SimConfig::flat(2))
        .run()
        .unwrap();
    assert!(result.try_get(0, 11).is_some());
    assert!(result.try_get(11, 0).is_none());
}

#[test]
fn utilization_reported_and_sane() {
    let report = SimEngine::new(MixApp, Grid3::new(200, 200), SimConfig::paper(2))
        .run()
        .unwrap()
        .report()
        .clone();
    let u2 = report.utilization(6).expect("sim reports busy time");
    assert!(u2 > 0.0 && u2 <= 1.0, "u2 = {u2}");

    let report12 = SimEngine::new(MixApp, Grid3::new(200, 200), SimConfig::paper(12))
        .run()
        .unwrap()
        .report()
        .clone();
    let u12 = report12.utilization(6).unwrap();
    assert!(
        u12 < u2,
        "utilisation drops as nodes grow for a fixed problem: {u12} vs {u2}"
    );
}

#[test]
fn traced_run_records_wavefront_and_matches_untraced() {
    let engine = SimEngine::new(MixApp, Grid3::new(40, 40), SimConfig::flat(4));
    let (result, trace) = engine.run_traced(100_000).unwrap();
    let plain = SimEngine::new(MixApp, Grid3::new(40, 40), SimConfig::flat(4))
        .run()
        .unwrap();
    assert_eq!(result.report().sim_time, plain.report().sim_time);

    // Every vertex finished exactly once, across all places.
    let per_place = trace.finishes_per_place();
    let total: u64 = per_place.iter().map(|(_, c)| c).sum();
    assert_eq!(total, 1600);
    assert_eq!(per_place.len(), 4, "all four places participated");

    // The timeline renders one row per place.
    let timeline = trace.render_timeline(20);
    assert_eq!(
        timeline.lines().filter(|l| l.starts_with("place")).count(),
        4
    );
    assert_eq!(trace.dropped(), 0);
}

#[test]
fn traced_fault_run_records_recovery_event() {
    use dpx10_sim::TraceKind;
    let engine = SimEngine::new(
        MixApp,
        Grid3::new(30, 30),
        SimConfig::flat(4).with_fault(SimFaultPlan::mid_run(PlaceId(3))),
    );
    let (_, trace) = engine.run_traced(1_000_000).unwrap();
    let recoveries = trace
        .events()
        .iter()
        .filter(|e| e.kind == TraceKind::Recovery)
        .count();
    assert_eq!(recoveries, 1);
}

#[test]
fn ready_policies_all_match_oracle() {
    use dpx10_sim::ReadyPolicy;
    for policy in ReadyPolicy::ALL {
        check(
            Grid3::new(14, 14),
            SimConfig::flat(3)
                .with_dist(DistKind::CyclicCol)
                .with_ready_policy(policy),
        );
    }
}

#[test]
fn min_diagonal_policy_never_loses_to_lifo_badly() {
    use dpx10_sim::ReadyPolicy;
    // Policies change the makespan but not correctness; record that the
    // wavefront-aware order is competitive on a grid DP.
    let run = |p| {
        SimEngine::new(
            MixApp,
            Grid3::new(120, 120),
            SimConfig::paper(2).with_ready_policy(p),
        )
        .run()
        .unwrap()
        .report()
        .sim_time
    };
    let fifo = run(ReadyPolicy::Fifo);
    let min_diag = run(ReadyPolicy::MinDiagonal);
    let ratio = min_diag.as_secs_f64() / fifo.as_secs_f64();
    assert!(
        (0.5..=1.5).contains(&ratio),
        "policies should be within 50% of each other here: {ratio}"
    );
}

//! The simulator's cost model and configuration.

use std::time::Duration;

use dpx10_apgas::{NetworkModel, PlaceId, Topology};
use dpx10_core::ScheduleStrategy;
use dpx10_distarray::{DistKind, RecoveryCostModel, RestoreManner};

use crate::ready::ReadyPolicy;

/// Virtual-time prices of the simulated machine.
///
/// Defaults are calibrated in EXPERIMENTS.md against the paper's testbed
/// shapes: a Smith-Waterman-class cell is ~60–90 ns of real work on a
/// 2.93 GHz Xeon; DPX10's per-vertex bookkeeping (ready-list operations,
/// dependency resolution, activity spawn) costs a further handful of
/// nanoseconds — the source of the 1.02–1.12× overhead in Fig. 12.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Time one `compute()` call occupies a worker slot.
    pub compute: Duration,
    /// Per-vertex framework bookkeeping added on top of `compute`.
    pub framework_overhead: Duration,
    /// Prices of the recovery pass (Fig. 13).
    pub recovery: RecoveryCostModel,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            compute: Duration::from_nanos(60),
            framework_overhead: Duration::from_nanos(6),
            recovery: RecoveryCostModel::default(),
        }
    }
}

impl CostModel {
    /// Cost model with a given per-vertex compute time.
    pub fn with_compute(ns: u64) -> Self {
        CostModel {
            compute: Duration::from_nanos(ns),
            ..CostModel::default()
        }
    }
}

/// A planned failure in simulated execution: kill `place` once
/// `after_fraction` of the vertices have finished (the paper kills a node
/// "in the middle of the execution", §VIII-C).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimFaultPlan {
    /// The victim (never place 0).
    pub place: PlaceId,
    /// Progress fraction triggering the kill.
    pub after_fraction: f64,
}

impl SimFaultPlan {
    /// Kill `place` at 50 % progress.
    pub fn mid_run(place: PlaceId) -> Self {
        SimFaultPlan {
            place,
            after_fraction: 0.5,
        }
    }
}

/// Full simulator configuration; mirrors
/// [`dpx10_core::EngineConfig`] plus the [`CostModel`].
#[derive(Clone)]
pub struct SimConfig {
    /// Cluster shape (places and worker slots per place).
    pub topology: Topology,
    /// Interconnect model.
    pub network: NetworkModel,
    /// Vertex distribution over places.
    pub dist_kind: DistKind,
    /// Scheduling strategy.
    pub schedule: ScheduleStrategy,
    /// FIFO cache entries per place.
    pub cache_capacity: usize,
    /// Restore manner after a fault.
    pub restore_manner: RestoreManner,
    /// Optional planned failure.
    pub fault: Option<SimFaultPlan>,
    /// Virtual-time prices.
    pub cost: CostModel,
    /// Ready-list ordering per place (extension; see `sim::ready`).
    pub ready_policy: ReadyPolicy,
    /// How remote values travel (mirrors `EngineConfig::comms`).
    pub comms: dpx10_core::CommsMode,
}

impl SimConfig {
    /// The paper's deployment on `nodes` nodes (2 places × 6 workers
    /// each, Tianhe-like network), default knobs.
    pub fn paper(nodes: u16) -> Self {
        SimConfig {
            topology: Topology::paper(nodes),
            network: NetworkModel::tianhe_like(),
            dist_kind: DistKind::BlockCol,
            schedule: ScheduleStrategy::Local,
            cache_capacity: 4096,
            restore_manner: RestoreManner::RecomputeRemote,
            fault: None,
            cost: CostModel::default(),
            ready_policy: ReadyPolicy::Fifo,
            comms: dpx10_core::CommsMode::Pull,
        }
    }

    /// Flat test topology.
    pub fn flat(places: u16) -> Self {
        SimConfig {
            topology: Topology::flat(places),
            ..SimConfig::paper(1)
        }
    }

    /// Sets the distribution.
    pub fn with_dist(mut self, kind: DistKind) -> Self {
        self.dist_kind = kind;
        self
    }

    /// Sets the scheduling strategy.
    pub fn with_schedule(mut self, schedule: ScheduleStrategy) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the cache capacity.
    pub fn with_cache(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Sets the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Plans a fault.
    pub fn with_fault(mut self, fault: SimFaultPlan) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Sets the restore manner.
    pub fn with_restore(mut self, manner: RestoreManner) -> Self {
        self.restore_manner = manner;
        self
    }

    /// Sets the ready-list policy.
    pub fn with_ready_policy(mut self, policy: ReadyPolicy) -> Self {
        self.ready_policy = policy;
        self
    }

    /// Sets the remote-value delivery mode.
    pub fn with_comms(mut self, comms: dpx10_core::CommsMode) -> Self {
        self.comms = comms;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_shape() {
        let c = SimConfig::paper(10);
        assert_eq!(c.topology.num_places(), 20);
        assert_eq!(c.topology.threads_per_place, 6);
        assert!(c.fault.is_none());
    }

    #[test]
    fn builders() {
        let c = SimConfig::flat(3)
            .with_cache(9)
            .with_cost(CostModel::with_compute(120))
            .with_fault(SimFaultPlan::mid_run(PlaceId(2)));
        assert_eq!(c.cache_capacity, 9);
        assert_eq!(c.cost.compute, Duration::from_nanos(120));
        assert_eq!(c.fault.unwrap().place, PlaceId(2));
    }
}

//! Execution tracing for simulated runs.
//!
//! A [`TraceBuffer`] records per-event `(virtual time, place, vertex,
//! kind)` tuples up to a capacity bound, and renders an ASCII activity
//! timeline — the quickest way to *see* a wavefront sweep across places,
//! a load imbalance, or the dead gap a recovery leaves behind.

use std::fmt::Write as _;
use std::time::Duration;

use dpx10_apgas::PlaceId;
use dpx10_dag::VertexId;

/// What happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A vertex began computing on a worker slot.
    Dispatch,
    /// A vertex's result was published.
    Finish,
    /// A message left this place.
    Send {
        /// Destination place.
        dst: PlaceId,
        /// Wire bytes.
        bytes: u32,
    },
    /// A recovery pass ran (vertex is `None`).
    Recovery,
}

/// One trace record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual timestamp.
    pub at: Duration,
    /// The place where it happened.
    pub place: PlaceId,
    /// The vertex involved, if any.
    pub vertex: Option<VertexId>,
    /// The event kind.
    pub kind: TraceKind,
}

/// A bounded event log. Events past the capacity are counted but
/// dropped, so tracing a billion-vertex run cannot exhaust memory.
#[derive(Clone, Debug, Default)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// A buffer holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            events: Vec::with_capacity(capacity.min(1 << 16)),
            capacity,
            dropped: 0,
        }
    }

    /// Records one event (or counts it as dropped when full).
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, in record order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events that arrived after the buffer filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders an ASCII activity timeline: one row per place, `buckets`
    /// time buckets wide, brightness ∝ vertices finished in the bucket.
    ///
    /// ```text
    /// place 0 |@@%#=-:.    |
    /// place 1 |  .:=+#%@%=.|
    /// ```
    pub fn render_timeline(&self, buckets: usize) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        assert!(buckets > 0);
        let finishes: Vec<&TraceEvent> = self
            .events
            .iter()
            .filter(|e| e.kind == TraceKind::Finish)
            .collect();
        if finishes.is_empty() {
            return String::from("(no finish events recorded)\n");
        }
        let t_end = finishes.iter().map(|e| e.at).max().unwrap();
        let t_end = t_end.max(Duration::from_nanos(1));
        let nplaces = finishes.iter().map(|e| e.place.index()).max().unwrap() + 1;
        let mut counts = vec![vec![0u64; buckets]; nplaces];
        for e in &finishes {
            let b = ((e.at.as_nanos() * buckets as u128) / (t_end.as_nanos() + 1)) as usize;
            counts[e.place.index()][b.min(buckets - 1)] += 1;
        }
        let peak = counts
            .iter()
            .flat_map(|row| row.iter())
            .copied()
            .max()
            .unwrap_or(1)
            .max(1);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "activity timeline ({} finishes over {:?}; peak {} per bucket)",
            finishes.len(),
            t_end,
            peak
        );
        for (p, row) in counts.iter().enumerate() {
            let cells: String = row
                .iter()
                .map(|&c| {
                    let idx = (c * (RAMP.len() as u64 - 1)).div_ceil(peak) as usize;
                    RAMP[idx.min(RAMP.len() - 1)] as char
                })
                .collect();
            let _ = writeln!(out, "place {p:>3} |{cells}|");
        }
        if self.dropped > 0 {
            let _ = writeln!(out, "({} events dropped past capacity)", self.dropped);
        }
        out
    }

    /// A deterministic FNV-1a digest of every recorded event (including
    /// the dropped-event count). Two simulated runs of the same seed and
    /// configuration must produce the same fingerprint — the chaos
    /// harness uses this to assert bit-for-bit trace reproducibility.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        for e in &self.events {
            mix(e.at.as_nanos() as u64);
            mix(u64::from(e.place.0));
            match e.vertex {
                Some(v) => mix(v.pack()),
                None => mix(u64::MAX),
            }
            match e.kind {
                TraceKind::Dispatch => mix(1),
                TraceKind::Finish => mix(2),
                TraceKind::Send { dst, bytes } => {
                    mix(3);
                    mix(u64::from(dst.0));
                    mix(u64::from(bytes));
                }
                TraceKind::Recovery => mix(4),
            }
        }
        mix(self.dropped);
        h
    }

    /// Per-place finished-vertex counts — a quick balance check.
    pub fn finishes_per_place(&self) -> Vec<(PlaceId, u64)> {
        let mut counts: std::collections::BTreeMap<u16, u64> = Default::default();
        for e in &self.events {
            if e.kind == TraceKind::Finish {
                *counts.entry(e.place.0).or_default() += 1;
            }
        }
        counts.into_iter().map(|(p, c)| (PlaceId(p), c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ns: u64, place: u16, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            at: Duration::from_nanos(ns),
            place: PlaceId(place),
            vertex: Some(VertexId::new(0, 0)),
            kind,
        }
    }

    #[test]
    fn records_until_capacity() {
        let mut t = TraceBuffer::new(2);
        t.record(ev(1, 0, TraceKind::Finish));
        t.record(ev(2, 0, TraceKind::Finish));
        t.record(ev(3, 0, TraceKind::Finish));
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn timeline_renders_rows_per_place() {
        let mut t = TraceBuffer::new(64);
        for k in 0..10 {
            t.record(ev(k * 100, 0, TraceKind::Finish));
        }
        for k in 5..10 {
            t.record(ev(k * 100, 1, TraceKind::Finish));
        }
        let s = t.render_timeline(10);
        assert!(s.contains("place   0 |"));
        assert!(s.contains("place   1 |"));
        // Place 1 is idle early: its row starts with spaces.
        let row1 = s.lines().find(|l| l.starts_with("place   1")).unwrap();
        assert!(row1.contains("| "), "{row1}");
    }

    #[test]
    fn empty_timeline_is_graceful() {
        let t = TraceBuffer::new(8);
        assert_eq!(t.render_timeline(5), "(no finish events recorded)\n");
    }

    #[test]
    fn fingerprint_is_order_and_content_sensitive() {
        let mut a = TraceBuffer::new(16);
        a.record(ev(1, 0, TraceKind::Finish));
        a.record(ev(2, 1, TraceKind::Dispatch));
        let mut b = TraceBuffer::new(16);
        b.record(ev(1, 0, TraceKind::Finish));
        b.record(ev(2, 1, TraceKind::Dispatch));
        assert_eq!(a.fingerprint(), b.fingerprint());

        let mut c = TraceBuffer::new(16);
        c.record(ev(2, 1, TraceKind::Dispatch));
        c.record(ev(1, 0, TraceKind::Finish));
        assert_ne!(a.fingerprint(), c.fingerprint(), "order must matter");

        let mut d = TraceBuffer::new(16);
        d.record(ev(1, 0, TraceKind::Finish));
        d.record(ev(2, 2, TraceKind::Dispatch));
        assert_ne!(a.fingerprint(), d.fingerprint(), "content must matter");
    }

    #[test]
    fn finishes_per_place_counts() {
        let mut t = TraceBuffer::new(16);
        t.record(ev(1, 2, TraceKind::Finish));
        t.record(ev(2, 2, TraceKind::Finish));
        t.record(ev(3, 0, TraceKind::Finish));
        t.record(ev(
            4,
            0,
            TraceKind::Send {
                dst: PlaceId(2),
                bytes: 8,
            },
        ));
        assert_eq!(
            t.finishes_per_place(),
            vec![(PlaceId(0), 1), (PlaceId(2), 2)]
        );
    }
}

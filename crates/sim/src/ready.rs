//! Ready-list ordering policies for the simulator.
//!
//! The paper's worker "repeatedly pull\[s\] the vertices from the
//! \[ready\] list" without specifying an order; its future work plans
//! "sophisticated scheduling … techniques" (§X). The order matters: a
//! wavefront DP wants deep vertices first (they unblock the next
//! anti-diagonal), while FIFO drains each diagonal breadth-first. The
//! simulator makes the policy explicit so it can be measured.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// How a place orders its ready vertices.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReadyPolicy {
    /// First-in first-out (the engines' default).
    #[default]
    Fifo,
    /// Last-in first-out (depth-first-ish).
    Lifo,
    /// Smallest `i + j` first: advance the earliest wavefront.
    MinDiagonal,
    /// Largest `i + j` first: race ahead on the deepest wavefront.
    MaxDiagonal,
}

impl ReadyPolicy {
    /// All policies, for sweeps.
    pub const ALL: [ReadyPolicy; 4] = [
        ReadyPolicy::Fifo,
        ReadyPolicy::Lifo,
        ReadyPolicy::MinDiagonal,
        ReadyPolicy::MaxDiagonal,
    ];

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ReadyPolicy::Fifo => "fifo",
            ReadyPolicy::Lifo => "lifo",
            ReadyPolicy::MinDiagonal => "min-diagonal",
            ReadyPolicy::MaxDiagonal => "max-diagonal",
        }
    }
}

/// One place's ready list under a chosen policy. Entries are
/// `(local index, diagonal)`.
#[derive(Debug)]
pub enum ReadyQueue {
    /// FIFO / LIFO share a deque.
    Deque {
        /// The queue.
        items: VecDeque<u32>,
        /// Pop from the back instead of the front.
        lifo: bool,
    },
    /// Diagonal-priority heap; `flip` negates the key for max-first.
    Heap {
        /// `(key, insertion seq, local index)` min-heap.
        items: BinaryHeap<Reverse<(u64, u64, u32)>>,
        /// Negate the diagonal key (max-diagonal-first).
        flip: bool,
        /// Insertion counter for stable ties.
        seq: u64,
    },
}

impl ReadyQueue {
    /// An empty queue under `policy`.
    pub fn new(policy: ReadyPolicy) -> Self {
        match policy {
            ReadyPolicy::Fifo => ReadyQueue::Deque {
                items: VecDeque::new(),
                lifo: false,
            },
            ReadyPolicy::Lifo => ReadyQueue::Deque {
                items: VecDeque::new(),
                lifo: true,
            },
            ReadyPolicy::MinDiagonal => ReadyQueue::Heap {
                items: BinaryHeap::new(),
                flip: false,
                seq: 0,
            },
            ReadyPolicy::MaxDiagonal => ReadyQueue::Heap {
                items: BinaryHeap::new(),
                flip: true,
                seq: 0,
            },
        }
    }

    /// Enqueues a ready vertex with its anti-diagonal `diag = i + j`.
    pub fn push(&mut self, li: u32, diag: u64) {
        match self {
            ReadyQueue::Deque { items, .. } => items.push_back(li),
            ReadyQueue::Heap { items, flip, seq } => {
                let key = if *flip { u64::MAX - diag } else { diag };
                items.push(Reverse((key, *seq, li)));
                *seq += 1;
            }
        }
    }

    /// Dequeues the next vertex under the policy.
    pub fn pop(&mut self) -> Option<u32> {
        match self {
            ReadyQueue::Deque { items, lifo: false } => items.pop_front(),
            ReadyQueue::Deque { items, lifo: true } => items.pop_back(),
            ReadyQueue::Heap { items, .. } => items.pop().map(|Reverse((_, _, li))| li),
        }
    }

    /// Number of queued vertices.
    pub fn len(&self) -> usize {
        match self {
            ReadyQueue::Deque { items, .. } => items.len(),
            ReadyQueue::Heap { items, .. } => items.len(),
        }
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut ReadyQueue) -> Vec<u32> {
        std::iter::from_fn(|| q.pop()).collect()
    }

    #[test]
    fn fifo_order() {
        let mut q = ReadyQueue::new(ReadyPolicy::Fifo);
        for (li, d) in [(1, 9), (2, 1), (3, 5)] {
            q.push(li, d);
        }
        assert_eq!(drain(&mut q), vec![1, 2, 3]);
    }

    #[test]
    fn lifo_order() {
        let mut q = ReadyQueue::new(ReadyPolicy::Lifo);
        for (li, d) in [(1, 9), (2, 1), (3, 5)] {
            q.push(li, d);
        }
        assert_eq!(drain(&mut q), vec![3, 2, 1]);
    }

    #[test]
    fn min_diagonal_order_with_stable_ties() {
        let mut q = ReadyQueue::new(ReadyPolicy::MinDiagonal);
        for (li, d) in [(1, 5), (2, 1), (3, 5), (4, 0)] {
            q.push(li, d);
        }
        assert_eq!(drain(&mut q), vec![4, 2, 1, 3]);
    }

    #[test]
    fn max_diagonal_order() {
        let mut q = ReadyQueue::new(ReadyPolicy::MaxDiagonal);
        for (li, d) in [(1, 5), (2, 1), (3, 9)] {
            q.push(li, d);
        }
        assert_eq!(drain(&mut q), vec![3, 1, 2]);
    }

    #[test]
    fn len_tracks() {
        let mut q = ReadyQueue::new(ReadyPolicy::MaxDiagonal);
        assert!(q.is_empty());
        q.push(7, 3);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}

//! The event heap: a deterministic virtual-time priority queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual time in nanoseconds.
pub type SimTime = u64;

/// A min-heap of `(time, sequence)`-ordered events. The sequence number
/// breaks ties deterministically in insertion order, so runs are exactly
/// reproducible.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64, OrdIgnore<E>)>>,
    seq: u64,
}

/// Wrapper that opts the payload out of the ordering (ties are already
/// broken by the sequence number, which is unique).
struct OrdIgnore<E>(E);

impl<E> PartialEq for OrdIgnore<E> {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}
impl<E> Eq for OrdIgnore<E> {}
impl<E> PartialOrd for OrdIgnore<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for OrdIgnore<E> {
    fn cmp(&self, _other: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at absolute virtual time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        self.heap.push(Reverse((at, self.seq, OrdIgnore(event))));
        self.seq += 1;
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse((t, _, e))| (t, e.0))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events (epoch boundary: in-flight messages of a
    /// faulted epoch are lost).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(5, 1);
        q.push(5, 2);
        q.push(5, 3);
        assert_eq!(q.pop(), Some((5, 1)));
        assert_eq!(q.pop(), Some((5, 2)));
        assert_eq!(q.pop(), Some((5, 3)));
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.push(1, ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }
}

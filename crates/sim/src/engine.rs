//! The simulated DPX10 engine.
//!
//! Semantics are identical to `dpx10_core::ThreadedEngine` — same shard
//! state, same push/pull message protocol, same scheduling strategies,
//! same recovery — but execution advances a virtual clock: each place has
//! `W` worker slots, a dispatched vertex occupies one for
//! `framework_overhead + compute`, and messages arrive after the network
//! model's transfer time. Runs are bit-for-bit deterministic.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dpx10_apgas::{Codec, PlaceId};
use dpx10_core::state::{build_shards, collect_array, local_index, Fill, Parked, Shard};
use dpx10_core::{
    msg::Msg, schedule::min_comm_choice, schedule::random_choice, CommsMode, DagResult, DepView,
    DpApp, EngineError, InitOverride, RunReport, ScheduleStrategy,
};
use dpx10_dag::{validate_pattern, DagPattern, VertexId};
use dpx10_distarray::{recover, Dist, DistArray, Region2D};
use dpx10_obs::{EventKind, Recorder, RUNTIME_WORKER};

use crate::cost::SimConfig;
use crate::event::{EventQueue, SimTime};
use crate::ready::ReadyQueue;
use crate::trace::{TraceBuffer, TraceEvent, TraceKind};

/// The simulator engine for one application run.
pub struct SimEngine<A: DpApp> {
    app: Arc<A>,
    pattern: Arc<dyn DagPattern>,
    config: SimConfig,
    init: Option<InitOverride<A::Value>>,
    recorder: Recorder,
}

enum Ev<V> {
    /// A locally dispatched vertex finishes computing on worker `tid`.
    Done {
        slot: usize,
        li: u32,
        value: V,
        tid: u16,
    },
    /// A remotely shipped vertex finishes computing at `slot`, worker
    /// `tid`.
    ExecDone {
        slot: usize,
        owner: PlaceId,
        id: VertexId,
        value: V,
        tid: u16,
    },
    /// A message arrives at `dst`.
    Arrive {
        src: PlaceId,
        dst: PlaceId,
        msg: Msg<V>,
    },
}

/// Mutable per-epoch simulation state.
/// A remotely shipped vertex waiting for a worker: `(id, dep ids,
/// dep values)`.
type ExecTask<V> = (VertexId, Vec<VertexId>, Vec<V>);

struct Epoch<V> {
    dist: Arc<Dist>,
    shards: Vec<Shard<V>>,
    /// Policy-ordered ready lists (supersede the shards' FIFO queues).
    ready: Vec<ReadyQueue>,
    /// Remotely shipped vertices waiting for a worker, per slot.
    exec_queue: Vec<std::collections::VecDeque<ExecTask<V>>>,
    busy: Vec<u16>,
    queue: EventQueue<Ev<V>>,
    finished: u64,
    computed: u64,
    /// Index of the dead slot once the fault fires.
    fault_at: Option<(PlaceId, SimTime)>,
    /// Accumulated communication counters.
    msgs: u64,
    bytes: u64,
    net_time: Duration,
    cache_hits: u64,
    cache_misses: u64,
    pulls_sent: u64,
    pulls_deduped: u64,
    pushes_sent: u64,
    pull_roundtrips_avoided: u64,
    /// Latest publish time seen.
    last_publish: SimTime,
    /// Accumulated busy nanoseconds per slot.
    busy_ns: Vec<u64>,
    /// Optional event trace.
    trace: Option<TraceBuffer>,
    /// Flight recorder (virtual-clock timestamps, shared schema with the
    /// real backends).
    rec: Recorder,
    /// Free worker ids per slot, so concurrent virtual workers land on
    /// distinct timeline tracks. Leased at dispatch, returned on `Done`.
    free_tids: Vec<Vec<u16>>,
}

impl<A: DpApp + 'static> SimEngine<A> {
    /// Creates a simulator for `app` over `pattern` with `config`.
    pub fn new(app: A, pattern: impl DagPattern + 'static, config: SimConfig) -> Self {
        SimEngine {
            app: Arc::new(app),
            pattern: Arc::new(pattern),
            config,
            init: None,
            recorder: Recorder::disabled(),
        }
    }

    /// Installs a §VI-E initialisation override.
    pub fn with_init(mut self, init: InitOverride<A::Value>) -> Self {
        self.init = Some(init);
        self
    }

    /// Attaches a flight recorder. Simulated runs stamp events with the
    /// *virtual* clock, so exported timelines show simulated time.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Runs the simulation to completion and returns the results with
    /// `report().sim_time` holding the virtual makespan.
    pub fn run(&self) -> Result<DagResult<A::Value>, EngineError> {
        self.run_impl(0).map(|(r, _)| r)
    }

    /// Like [`SimEngine::run`], but also records up to `trace_capacity`
    /// [`TraceEvent`]s (dispatches, finishes, sends, recoveries) for
    /// timeline analysis.
    pub fn run_traced(
        &self,
        trace_capacity: usize,
    ) -> Result<(DagResult<A::Value>, TraceBuffer), EngineError> {
        let (result, trace) = self.run_impl(trace_capacity)?;
        Ok((result, trace.expect("tracing was requested")))
    }

    fn run_impl(
        &self,
        trace_capacity: usize,
    ) -> Result<(DagResult<A::Value>, Option<TraceBuffer>), EngineError> {
        let pattern = self.pattern.as_ref();
        let total = pattern.vertex_count();
        if total <= 10_000 && cfg!(debug_assertions) {
            validate_pattern(pattern)?;
        }
        if let Some(plan) = &self.config.fault {
            if plan.place == PlaceId::ZERO
                || plan.place.index() >= self.config.topology.num_places() as usize
            {
                return Err(EngineError::BadFaultPlan(format!(
                    "{} is not a killable place",
                    plan.place
                )));
            }
        }

        let wall_start = Instant::now();
        let region = Region2D::new(pattern.height(), pattern.width());
        let mut alive: Vec<PlaceId> = self.config.topology.places().collect();
        let mut prior: Option<DistArray<A::Value>> = None;
        let mut base: SimTime = 0;
        let mut report = RunReport {
            vertices_total: total,
            ..RunReport::default()
        };
        let mut fault_pending = self.config.fault;
        let mut makespan_ns: SimTime = 0;
        let mut full_trace = (trace_capacity > 0).then(|| TraceBuffer::new(trace_capacity));

        let final_array = loop {
            report.epochs += 1;
            let dist = Arc::new(Dist::new(
                region,
                self.config.dist_kind.clone(),
                alive.clone(),
            ));
            // The simulator always executes through the enumerated
            // adapter view (no aggregation lanes): it is the differential
            // oracle the prefix-aggregated real backends are compared
            // against.
            let (shards, prefinished) = build_shards(
                pattern,
                &dist,
                prior.as_ref(),
                None,
                self.init.as_ref(),
                self.config.cache_capacity,
                None,
            );
            let nslots = dist.num_slots();
            // Move the seeded FIFO ready lists into policy queues.
            let ready: Vec<ReadyQueue> = shards
                .iter()
                .map(|shard| {
                    let mut q = ReadyQueue::new(self.config.ready_policy);
                    while let Some(li) = shard.ready.pop() {
                        let (i, j) = shard.points[li as usize];
                        q.push(li, i as u64 + j as u64);
                    }
                    q
                })
                .collect();
            let mut ep = Epoch {
                dist: dist.clone(),
                shards,
                ready,
                exec_queue: (0..nslots).map(|_| Default::default()).collect(),
                busy: vec![0; nslots],
                queue: EventQueue::new(),
                finished: prefinished,
                computed: 0,
                fault_at: None,
                msgs: 0,
                bytes: 0,
                net_time: Duration::ZERO,
                cache_hits: 0,
                cache_misses: 0,
                pulls_sent: 0,
                pulls_deduped: 0,
                pushes_sent: 0,
                pull_roundtrips_avoided: 0,
                last_publish: base,
                busy_ns: vec![0; nslots],
                trace: full_trace.take(),
                rec: self.recorder.clone(),
                free_tids: (0..nslots)
                    .map(|_| (0..self.config.topology.threads_per_place).rev().collect())
                    .collect(),
            };
            self.recorder.instant(
                0,
                RUNTIME_WORKER,
                EventKind::EpochStart,
                base,
                u64::from(report.epochs - 1),
            );

            if prefinished == total {
                full_trace = ep.trace.take();
                break collect_array(&ep.shards, &dist);
            }

            let threshold = fault_pending.map(|p| {
                (
                    p.place,
                    ((p.after_fraction * total as f64).ceil() as u64).clamp(1, total),
                )
            });

            // Seed: dispatch every slot at the epoch base time.
            for slot in 0..nslots {
                self.dispatch(&mut ep, slot, base, threshold);
            }

            // Main event loop.
            let outcome = loop {
                if ep.finished >= total {
                    break EpochEnd::Complete;
                }
                if let Some((victim, _)) = ep.fault_at {
                    break EpochEnd::Fault(victim);
                }
                let Some((t, ev)) = ep.queue.pop() else {
                    break EpochEnd::Stalled;
                };
                match ev {
                    Ev::Done {
                        slot,
                        li,
                        value,
                        tid,
                    } => {
                        ep.busy[slot] -= 1;
                        ep.free_tids[slot].push(tid);
                        let (i, j) = ep.shards[slot].points[li as usize];
                        self.publish(&mut ep, slot, li, VertexId::new(i, j), value, t, threshold);
                        self.dispatch(&mut ep, slot, t, threshold);
                    }
                    Ev::ExecDone {
                        slot,
                        owner,
                        id,
                        value,
                        tid,
                    } => {
                        ep.busy[slot] -= 1;
                        ep.free_tids[slot].push(tid);
                        let src = ep.dist.places()[slot];
                        self.send(&mut ep, t, src, owner, Msg::ExecResult { id, value });
                        self.dispatch(&mut ep, slot, t, threshold);
                    }
                    Ev::Arrive { src, dst, msg } => {
                        let Some(slot) = slot_of_place(&ep.dist, dst) else {
                            continue;
                        };
                        self.handle_msg(&mut ep, slot, src, msg, t, threshold);
                        self.dispatch(&mut ep, slot, t, threshold);
                    }
                }
            };

            makespan_ns = makespan_ns.max(ep.last_publish);
            full_trace = ep.trace.take();
            if report.place_busy.len() < ep.busy_ns.len() {
                report.place_busy.resize(ep.busy_ns.len(), Duration::ZERO);
            }
            for (slot, &ns) in ep.busy_ns.iter().enumerate() {
                report.place_busy[slot] += Duration::from_nanos(ns);
            }
            report.vertices_computed += ep.computed;
            report.comm.messages_sent += ep.msgs;
            report.comm.bytes_sent += ep.bytes;
            report.comm.net_time += ep.net_time;
            report.comm.cache_hits += ep.cache_hits;
            report.comm.cache_misses += ep.cache_misses;
            report.comm.pulls_sent += ep.pulls_sent;
            report.comm.pulls_deduped += ep.pulls_deduped;
            report.comm.pushes_sent += ep.pushes_sent;
            report.comm.pull_roundtrips_avoided += ep.pull_roundtrips_avoided;
            report.comm.tasks_run += ep.computed;

            match outcome {
                EpochEnd::Complete => break collect_array(&ep.shards, &dist),
                EpochEnd::Stalled => {
                    return Err(EngineError::Stalled {
                        finished: ep.finished,
                        total,
                    })
                }
                EpochEnd::Fault(victim) => {
                    let fault_time = ep.fault_at.expect("fault recorded").1;
                    let snapshot = collect_array(&ep.shards, &dist);
                    let (restored, rec) = recover(
                        &snapshot,
                        &[victim],
                        self.config.restore_manner,
                        &self.config.topology,
                        &self.config.network,
                        &self.config.cost.recovery,
                    );
                    base = fault_time + rec.sim_time.as_nanos() as SimTime;
                    self.recorder.instant(
                        victim.0,
                        RUNTIME_WORKER,
                        EventKind::Fault,
                        fault_time,
                        u64::from(report.epochs - 1),
                    );
                    self.recorder.span(
                        0,
                        RUNTIME_WORKER,
                        EventKind::Recovery,
                        fault_time,
                        base,
                        u64::from(report.epochs - 1),
                    );
                    if let Some(buf) = &mut full_trace {
                        buf.record(TraceEvent {
                            at: Duration::from_nanos(fault_time),
                            place: victim,
                            vertex: None,
                            kind: TraceKind::Recovery,
                        });
                    }
                    report.recovery_time += rec.sim_time;
                    report.recoveries.push(rec);
                    prior = Some(restored);
                    alive.retain(|&p| p != victim);
                    fault_pending = None;
                }
            }
        };

        report.sim_time = Duration::from_nanos(makespan_ns.max(base));
        report.wall_time = wall_start.elapsed();
        let result = DagResult::new(final_array, report);
        self.app.app_finished(&result);
        Ok((result, full_trace))
    }
}

enum EpochEnd {
    Complete,
    Fault(PlaceId),
    Stalled,
}

/// Records a trace event when tracing is on.
fn trace_event<V>(
    ep: &mut Epoch<V>,
    t: SimTime,
    place: PlaceId,
    vertex: Option<VertexId>,
    kind: TraceKind,
) {
    if let Some(buf) = &mut ep.trace {
        buf.record(TraceEvent {
            at: Duration::from_nanos(t),
            place,
            vertex,
            kind,
        });
    }
}

#[inline]
fn slot_of_place(dist: &Dist, place: PlaceId) -> Option<usize> {
    dist.places().iter().position(|&p| p == place)
}

impl<A: DpApp + 'static> SimEngine<A> {
    /// Prices and enqueues a message; local sends are free.
    fn send(
        &self,
        ep: &mut Epoch<A::Value>,
        t: SimTime,
        src: PlaceId,
        dst: PlaceId,
        msg: Msg<A::Value>,
    ) {
        let bytes = msg.wire_size();
        let arrive = if src == dst {
            t
        } else {
            let cost = self
                .config
                .network
                .transfer_time(&self.config.topology, src, dst, bytes);
            ep.msgs += 1;
            ep.bytes += bytes as u64;
            ep.net_time += cost;
            ep.rec
                .instant(src.0, RUNTIME_WORKER, EventKind::MsgSend, t, bytes as u64);
            trace_event(
                ep,
                t,
                src,
                None,
                TraceKind::Send {
                    dst,
                    bytes: bytes.min(u32::MAX as usize) as u32,
                },
            );
            t + cost.as_nanos() as SimTime
        };
        ep.queue.push(arrive, Ev::Arrive { src, dst, msg });
    }

    /// Fills the free worker slots of `slot` with ready work at time `t`.
    fn dispatch(
        &self,
        ep: &mut Epoch<A::Value>,
        slot: usize,
        t: SimTime,
        threshold: Option<(PlaceId, u64)>,
    ) {
        let capacity = self.config.topology.threads_per_place;
        let me = ep.dist.places()[slot];
        if let Some((victim, _)) = ep.fault_at {
            if victim == me {
                return; // dead place dispatches nothing
            }
        }
        let step =
            (self.config.cost.framework_overhead + self.config.cost.compute).as_nanos() as SimTime;
        while ep.busy[slot] < capacity {
            // Remotely shipped work first (it already consumed scheduling
            // effort at its owner), then the local ready list.
            if let Some((id, dep_ids, dep_values)) = ep.exec_queue[slot].pop_front() {
                let view = DepView::new(&dep_ids, &dep_values);
                let value = self.app.compute(id, &view);
                let owner = ep.dist.place_of(id.i, id.j);
                ep.busy[slot] += 1;
                ep.busy_ns[slot] += step;
                let tid = ep.free_tids[slot].pop().unwrap_or(0);
                ep.rec
                    .span(me.0, tid, EventKind::VertexCompute, t, t + step, id.pack());
                ep.queue.push(
                    t + step,
                    Ev::ExecDone {
                        slot,
                        owner,
                        id,
                        value,
                        tid,
                    },
                );
                continue;
            }
            let Some(li) = ep.ready[slot].pop() else {
                break;
            };
            let (i, j) = ep.shards[slot].points[li as usize];
            let id = VertexId::new(i, j);
            if ep.shards[slot].finished[li as usize].load(Ordering::Relaxed) {
                continue;
            }
            let mut dep_ids = Vec::new();
            self.pattern.dependencies(i, j, &mut dep_ids);
            let Some(values) = self.gather(ep, slot, li, &dep_ids, t) else {
                continue; // parked on pulls; no worker consumed
            };

            let target = match self.config.schedule {
                ScheduleStrategy::Local | ScheduleStrategy::WorkStealing => me,
                ScheduleStrategy::Random => random_choice(id, ep.dist.places()),
                ScheduleStrategy::MinComm => {
                    let homes: Vec<PlaceId> =
                        dep_ids.iter().map(|d| ep.dist.place_of(d.i, d.j)).collect();
                    let bytes: Vec<usize> = values.iter().map(Codec::wire_size).collect();
                    let result_bytes = values.first().map_or(8, |v| v.wire_size());
                    min_comm_choice(
                        me,
                        ep.dist.places(),
                        &homes,
                        &bytes,
                        result_bytes,
                        &self.config.topology,
                        &self.config.network,
                    )
                }
            };
            if target != me {
                let msg = Msg::Exec {
                    id,
                    dep_ids,
                    dep_values: values,
                };
                // Shipping costs the owner its scheduling overhead only.
                let at = t + self.config.cost.framework_overhead.as_nanos() as SimTime;
                self.send(ep, at, me, target, msg);
                continue;
            }
            let view = DepView::new(&dep_ids, &values);
            let value = self.app.compute(id, &view);
            ep.busy[slot] += 1;
            ep.busy_ns[slot] += step;
            let tid = ep.free_tids[slot].pop().unwrap_or(0);
            ep.rec
                .span(me.0, tid, EventKind::VertexCompute, t, t + step, id.pack());
            trace_event(ep, t, me, Some(id), TraceKind::Dispatch);
            ep.queue.push(
                t + step,
                Ev::Done {
                    slot,
                    li,
                    value,
                    tid,
                },
            );
        }
        let _ = threshold;
    }

    /// Gathers dependency values at time `t`; parks the vertex and issues
    /// pulls on cache misses (same protocol as the threaded engine).
    fn gather(
        &self,
        ep: &mut Epoch<A::Value>,
        slot: usize,
        li: u32,
        deps: &[VertexId],
        t: SimTime,
    ) -> Option<Vec<A::Value>> {
        if deps.is_empty() {
            return Some(Vec::new());
        }
        let me = ep.dist.places()[slot];
        let mut vals: Vec<Option<A::Value>> = Vec::with_capacity(deps.len());
        {
            let shard = &ep.shards[slot];
            let cache = shard.cache.lock();
            for d in deps {
                if ep.dist.slot_of(d.i, d.j) == slot {
                    let dli = local_index(&ep.dist, *d);
                    vals.push(Some(shard.value(dli).clone()));
                } else if let Some(v) = cache.get(d.pack()) {
                    ep.cache_hits += 1;
                    ep.rec
                        .instant(me.0, RUNTIME_WORKER, EventKind::CacheHit, t, d.pack());
                    vals.push(Some(v.clone()));
                } else {
                    vals.push(None);
                }
            }
        }
        if vals.iter().all(Option::is_some) {
            ep.shards[slot].pending.lock().parked.remove(&li);
            return Some(vals.into_iter().map(Option::unwrap).collect());
        }

        let mut to_pull: Vec<VertexId> = Vec::new();
        let mut avoided = 0u64;
        let mut deduped = 0u64;
        let mut complete = false;
        {
            let shard = &ep.shards[slot];
            let mut pending = shard.pending.lock();
            // Previously pulled (or eagerly pushed) fills; consuming a
            // pushed fill demotes it to Pulled so a re-gather of a
            // still-parked vertex doesn't count the saving twice.
            if let Some(p) = pending.parked.get_mut(&li) {
                for (k, d) in deps.iter().enumerate() {
                    if vals[k].is_none() {
                        if let Some(fill) = p.fills.get_mut(&d.pack()) {
                            if let Fill::Pushed(v) = fill {
                                let v = v.clone();
                                avoided += 1;
                                vals[k] = Some(v.clone());
                                *fill = Fill::Pulled(v);
                            } else if let Some(v) = fill.value() {
                                vals[k] = Some(v.clone());
                            }
                        }
                    }
                }
            }
            if vals.iter().all(Option::is_some) {
                pending.parked.remove(&li);
                complete = true;
            }
            let mut newly_missing = Vec::new();
            if !complete {
                let entry = pending.parked.entry(li).or_insert_with(|| Parked {
                    fills: HashMap::new(),
                    remaining: 0,
                });
                for (k, d) in deps.iter().enumerate() {
                    if vals[k].is_none() && !entry.fills.contains_key(&d.pack()) {
                        entry.fills.insert(d.pack(), Fill::Missing);
                        entry.remaining += 1;
                        newly_missing.push(*d);
                    }
                }
            }
            for d in newly_missing {
                let waiters = pending.waiters.entry(d.pack()).or_default();
                if waiters.is_empty() {
                    to_pull.push(d);
                } else {
                    // Dedup hub: ride the outstanding pull.
                    deduped += 1;
                }
                waiters.push(li);
            }
        }
        ep.pull_roundtrips_avoided += avoided;
        ep.pulls_deduped += deduped;
        if complete {
            return Some(vals.into_iter().map(Option::unwrap).collect());
        }
        for d in &to_pull {
            ep.cache_misses += 1;
            ep.pulls_sent += 1;
            ep.rec
                .instant(me.0, RUNTIME_WORKER, EventKind::CacheMiss, t, d.pack());
            ep.rec
                .instant(me.0, RUNTIME_WORKER, EventKind::PullIssue, t, d.pack());
            let owner = ep.dist.place_of(d.i, d.j);
            self.send(ep, t, me, owner, Msg::Pull { id: *d });
        }
        None
    }

    /// Publishes a computed value at time `t`: store, decrement, message
    /// remote dependents, advance termination/fault triggers.
    #[allow(clippy::too_many_arguments)]
    fn publish(
        &self,
        ep: &mut Epoch<A::Value>,
        slot: usize,
        li: u32,
        id: VertexId,
        value: A::Value,
        t: SimTime,
        threshold: Option<(PlaceId, u64)>,
    ) {
        {
            let shard = &ep.shards[slot];
            shard.values[li as usize].set(value.clone()).ok();
            if shard.finished[li as usize].swap(true, Ordering::Relaxed) {
                return;
            }
        }
        // Computation is counted at publish, not dispatch: work stranded
        // in flight by an epoch abort was never visible to anyone, so it
        // must not inflate the recomputation count recovery is judged by.
        ep.computed += 1;
        ep.finished += 1;
        ep.last_publish = t;
        let me_place = ep.dist.places()[slot];
        trace_event(ep, t, me_place, Some(id), TraceKind::Finish);

        let mut anti = Vec::new();
        self.pattern.anti_dependencies(id.i, id.j, &mut anti);
        let me = ep.dist.places()[slot];
        let mut groups: BTreeMap<u16, Vec<VertexId>> = BTreeMap::new();
        for tgt in anti {
            let ts = ep.dist.slot_of(tgt.i, tgt.j);
            if ts == slot {
                decrement(&ep.shards[ts], &mut ep.ready[ts], &ep.dist, tgt);
            } else {
                groups.entry(ep.dist.places()[ts].0).or_default().push(tgt);
            }
        }
        for (q, targets) in groups {
            let msg = match self.config.comms {
                CommsMode::Pull => Msg::Done {
                    from: id,
                    value: value.clone(),
                    targets,
                },
                CommsMode::Push => {
                    ep.pushes_sent += 1;
                    Msg::PushVal {
                        from: id,
                        value: value.clone(),
                        targets,
                    }
                }
            };
            self.send(ep, t, me, PlaceId(q), msg);
        }

        if let Some((victim, thr)) = threshold {
            if ep.finished >= thr && ep.fault_at.is_none() && ep.finished < ep_total(ep) {
                ep.fault_at = Some((victim, t));
            }
        }
    }

    /// Handles one arrived message at `slot` (mirrors the threaded
    /// engine's `handle_msg`).
    fn handle_msg(
        &self,
        ep: &mut Epoch<A::Value>,
        slot: usize,
        src: PlaceId,
        msg: Msg<A::Value>,
        t: SimTime,
        threshold: Option<(PlaceId, u64)>,
    ) {
        let me = ep.dist.places()[slot];
        match msg {
            Msg::Done {
                from,
                value,
                targets,
            } => {
                ep.shards[slot].cache.lock().insert(from.pack(), value);
                for tgt in targets {
                    decrement(&ep.shards[slot], &mut ep.ready[slot], &ep.dist, tgt);
                }
            }
            Msg::Pull { id } => {
                let li = local_index(&ep.dist, id);
                let value = ep.shards[slot].value(li).clone();
                self.send(ep, t, me, src, Msg::PullVal { id, value });
            }
            Msg::PullVal { id, value } => {
                ep.rec
                    .instant(me.0, RUNTIME_WORKER, EventKind::PullFill, t, id.pack());
                let mut refill: Vec<u32> = Vec::new();
                let shard = &ep.shards[slot];
                shard.cache.lock().insert(id.pack(), value.clone());
                let mut pending = shard.pending.lock();
                if let Some(waiters) = pending.waiters.remove(&id.pack()) {
                    for wli in waiters {
                        if let Some(p) = pending.parked.get_mut(&wli) {
                            if let Some(fill @ Fill::Missing) = p.fills.get_mut(&id.pack()) {
                                *fill = Fill::Pulled(value.clone());
                                p.remaining -= 1;
                                if p.remaining == 0 {
                                    refill.push(wli);
                                }
                            }
                        }
                    }
                }
                drop(pending);
                for wli in refill {
                    let (i, j) = ep.shards[slot].points[wli as usize];
                    ep.ready[slot].push(wli, i as u64 + j as u64);
                }
            }
            Msg::Exec {
                id,
                dep_ids,
                dep_values,
            } => {
                ep.exec_queue[slot].push_back((id, dep_ids, dep_values));
            }
            Msg::ExecResult { id, value } => {
                let li = local_index(&ep.dist, id);
                self.publish(ep, slot, li, id, value, t, threshold);
            }
            // The simulator never coalesces (it models each event's
            // latency individually), but batches share the wire enum:
            // replay the carried messages through the same handlers.
            Msg::DoneBatch { entries } => {
                for (from, value, targets) in entries {
                    let unbatched = Msg::Done {
                        from,
                        value,
                        targets,
                    };
                    self.handle_msg(ep, slot, src, unbatched, t, threshold);
                }
            }
            Msg::PullBatch { ids } => {
                for id in ids {
                    self.handle_msg(ep, slot, src, Msg::Pull { id }, t, threshold);
                }
            }
            Msg::PullValBatch { entries } => {
                for (id, value) in entries {
                    self.handle_msg(ep, slot, src, Msg::PullVal { id, value }, t, threshold);
                }
            }
            // Push mode: same decrements as `Done`, but the value is
            // additionally pinned for every unfinished target so the
            // gather finds it past cache eviction (mirrors the threaded
            // engine's `handle_push`).
            Msg::PushVal {
                from,
                value,
                targets,
            } => {
                let shard = &ep.shards[slot];
                shard.cache.lock().insert(from.pack(), value.clone());
                let mut refill: Vec<u32> = Vec::new();
                {
                    let mut pending = shard.pending.lock();
                    for tgt in &targets {
                        let tli = local_index(&ep.dist, *tgt);
                        if shard.finished[tli as usize].load(Ordering::Relaxed) {
                            continue;
                        }
                        let entry = pending.parked.entry(tli).or_insert_with(|| Parked {
                            fills: HashMap::new(),
                            remaining: 0,
                        });
                        match entry.fills.get_mut(&from.pack()) {
                            Some(fill @ Fill::Missing) => {
                                *fill = Fill::Pushed(value.clone());
                                entry.remaining -= 1;
                                if entry.remaining == 0 {
                                    refill.push(tli);
                                }
                            }
                            Some(_) => {}
                            None => {
                                entry.fills.insert(from.pack(), Fill::Pushed(value.clone()));
                            }
                        }
                    }
                }
                for wli in refill {
                    let (i, j) = ep.shards[slot].points[wli as usize];
                    ep.ready[slot].push(wli, i as u64 + j as u64);
                }
                for tgt in targets {
                    decrement(&ep.shards[slot], &mut ep.ready[slot], &ep.dist, tgt);
                }
            }
            Msg::PushValBatch { entries } => {
                for (from, value, targets) in entries {
                    let unbatched = Msg::PushVal {
                        from,
                        value,
                        targets,
                    };
                    self.handle_msg(ep, slot, src, unbatched, t, threshold);
                }
            }
            // Relocation traffic belongs to the elastic mesh engine;
            // the simulator's place set is fixed for a whole run.
            Msg::ChunkOffer { .. } | Msg::ChunkData { .. } | Msg::ChunkAck { .. } => {}
        }
    }
}

/// Total vertex count cached on the epoch (all shards).
fn ep_total<V>(ep: &Epoch<V>) -> u64 {
    ep.shards.iter().map(|s| s.total_local).sum()
}

/// Single-threaded indegree decrement with the same skip-if-finished rule
/// as the threaded engine; readies the vertex on the policy queue.
fn decrement<V: dpx10_core::VertexValue>(
    shard: &Shard<V>,
    ready: &mut ReadyQueue,
    dist: &Dist,
    t: VertexId,
) {
    let li = local_index(dist, t);
    if shard.finished[li as usize].load(Ordering::Relaxed) {
        return;
    }
    let old = shard.indegree[li as usize].fetch_sub(1, Ordering::Relaxed);
    debug_assert!(old >= 1, "indegree underflow at {t}");
    if old == 1 {
        ready.push(li, t.i as u64 + t.j as u64);
    }
}

//! A deterministic discrete-event simulator of the DPX10 cluster.
//!
//! **Why this exists** (DESIGN.md §3): the paper's evaluation runs on
//! 2–12 Tianhe-1A nodes (up to 144 cores); this reproduction runs in a
//! one-core container, where real threads cannot exhibit cluster
//! scalability. The simulator executes the *same* programming model —
//! `DpApp` kernels over `DagPattern`s, per-place ready lists, the FIFO
//! remote-value cache, push-decrement/pull-fallback messaging, all three
//! scheduling strategies, and the paper's fault recovery — under a
//! virtual clock: vertices occupy one of the place's `W` worker slots for
//! a configurable compute time, and every inter-place message advances by
//! `latency + bytes/bandwidth` of the modelled interconnect.
//!
//! The simulation computes the real DP values (validated against the
//! threaded engine and serial oracles by the differential test-suite) and
//! reports the **makespan** — the virtual time at which the last vertex
//! completes. All scalability figures (10–13) are regenerated from this
//! engine.

#![warn(missing_docs)]

pub mod cost;
pub mod engine;
pub mod event;
pub mod ready;
pub mod trace;

pub use cost::{CostModel, SimConfig, SimFaultPlan};
pub use engine::SimEngine;
pub use ready::{ReadyPolicy, ReadyQueue};
pub use trace::{TraceBuffer, TraceEvent, TraceKind};

//! Offline stand-in for the subset of the [proptest](https://crates.io/crates/proptest)
//! API this workspace uses.
//!
//! The repository must build without network access, so the real crate
//! cannot be fetched. This vendored replacement keeps the test files'
//! source unchanged: the `proptest!` macro, `prop_assert*` macros,
//! `any::<T>()`, range/tuple/`collection::vec`/`option::of`/`bool::ANY`
//! strategies and `ProptestConfig` all work as the call sites expect.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * Inputs are drawn from a deterministic SplitMix64 stream seeded by
//!   the test name, so runs are reproducible but not shrunk on failure —
//!   the failing case index and inputs are reported instead.
//! * Only the strategy combinators the workspace actually uses exist.

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

/// A failed `prop_assert*` inside a proptest case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure from a rendered message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Controls how many cases each property runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
    /// Accepted for source compatibility with upstream proptest;
    /// shrinking is not implemented here, so the value is unused.
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 1024,
        }
    }
}

/// Deterministic SplitMix64 generator driving all strategies.
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the stream from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h | 1)
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of values for one proptest argument.
pub trait Strategy {
    /// The produced value type.
    type Value: fmt::Debug;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy for "any value of `T`" — see [`any`].
pub struct Any<T>(PhantomData<T>);

/// Produces arbitrary values of `T` (integers: full range; bool: fair
/// coin).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(PhantomData)
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}
range_strategy_signed!(i8, i16, i32, i64, isize);

macro_rules! range_inclusive_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() as u64)
                    .wrapping_sub(*self.start() as u64)
                    .wrapping_add(1);
                if span == 0 {
                    // Full domain of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                self.start().wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
range_inclusive_strategy_int!(u8, u16, u32, u64, usize);

/// String-pattern strategy. Real proptest treats a `&str` as a regex;
/// this stand-in only honours a trailing `{lo,hi}` repetition count and
/// draws the characters from a fixed printable set (ASCII plus a few
/// multi-byte code points, so UTF-8 handling still gets exercised).
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        const CHARS: &[char] = &[
            'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '-', '_', '.', ',', '!', '?', '/', '\\', 'é',
            'ß', 'λ', '中', '🦀',
        ];
        let (lo, hi) = parse_repetition(self).unwrap_or((0, 16));
        let span = (hi - lo + 1).max(1) as u64;
        let n = lo + rng.below(span) as usize;
        (0..n)
            .map(|_| CHARS[rng.below(CHARS.len() as u64) as usize])
            .collect()
    }
}

/// Extracts a trailing `{lo,hi}` from a pattern like `"\\PC{0,24}"`.
fn parse_repetition(pattern: &str) -> Option<(usize, usize)> {
    let open = pattern.rfind('{')?;
    let inner = pattern.get(open + 1..pattern.len().checked_sub(1)?)?;
    if !pattern.ends_with('}') {
        return None;
    }
    let (lo, hi) = inner.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification: a fixed size or a half-open range.
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing vectors of `elem`-drawn values.
    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    /// Vectors with element strategy `elem` and length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.hi - self.len.lo).max(1) as u64;
            let n = self.len.lo + rng.below(span) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `Option`s of an inner strategy's values.
    pub struct OptionStrategy<S>(S);

    /// `None` a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Any, PhantomData};

    /// A fair coin flip.
    pub const ANY: Any<::core::primitive::bool> = Any(PhantomData);
}

/// Everything the test files import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name), case, config.cases, e, inputs,
                    );
                }
            }
        }
        $crate::__proptest_impl!{ @cfg ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a proptest case, reporting the inputs on
/// failure instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// `assert_eq!` analogue of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}` ({})", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// `assert_ne!` analogue of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}` ({})", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 1usize..4, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f), "f = {f}");
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(crate::any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn tuples_and_options_sample(p in (crate::any::<u16>(), 0u32..9), o in crate::option::of(1u32..3)) {
            prop_assert!(p.1 < 9);
            if let Some(inner) = o {
                prop_assert!((1..3).contains(&inner));
            }
        }
    }

    #[test]
    fn bools_vary() {
        let mut rng = crate::TestRng::from_name("bools_vary");
        let seen: std::collections::HashSet<bool> =
            (0..64).map(|_| crate::bool::ANY.sample(&mut rng)).collect();
        assert_eq!(seen.len(), 2, "64 samples must produce both booleans");
    }
}

//! Property tests for the socket frame layer: round-trips hold, and no
//! mangled, truncated, or random input can panic the decoder — a corrupt
//! peer must surface as a `FrameError`, never as a crash.

use dpx10_apgas::socket::frame::{framed_len, read_frame, Frame, FrameError};
use proptest::prelude::*;

/// Deterministically maps fuzz inputs onto every frame kind.
fn build_frame(kind: u8, place: u16, addr: String, payload: Vec<u8>) -> Frame {
    match kind % 7 {
        0 => Frame::Hello {
            place,
            places: place.saturating_add(1),
            addr,
        },
        1 => {
            let addrs = vec![String::new(), addr, "127.0.0.1:9".to_string()];
            Frame::PeerMap { addrs }
        }
        2 => Frame::Ready,
        3 => Frame::Go,
        4 => Frame::Data {
            src: place,
            payload,
        },
        5 => Frame::Heartbeat,
        _ => Frame::Bye,
    }
}

proptest! {
    #[test]
    fn every_frame_round_trips(
        kind in any::<u8>(),
        place in any::<u16>(),
        addr in "\\PC{0,16}",
        payload in proptest::collection::vec(any::<u8>(), 0..96),
    ) {
        let frame = build_frame(kind, place, addr, payload);
        let wire = frame.to_wire();
        prop_assert_eq!(wire.len(), framed_len(wire.len() - 5));
        let mut cursor = &wire[..];
        let back = read_frame(&mut cursor).map_err(|e| {
            proptest::TestCaseError::fail(format!("decode failed: {e}"))
        })?;
        prop_assert_eq!(back, frame);
        prop_assert!(cursor.is_empty(), "decoder must consume the whole frame");
    }

    #[test]
    fn mangled_frames_error_but_never_panic(
        kind in any::<u8>(),
        place in any::<u16>(),
        addr in "\\PC{0,16}",
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        flip_at in any::<usize>(),
        flip_with in 1u8..=255,
    ) {
        let frame = build_frame(kind, place, addr, payload);
        let mut wire = frame.to_wire();
        let idx = flip_at % wire.len();
        wire[idx] ^= flip_with;
        let mut cursor = &wire[..];
        // Any outcome but a panic is acceptable; a corrupted length
        // prefix may legitimately truncate into Io/BadLength, a flipped
        // body byte may still decode (e.g. inside a Data payload).
        match read_frame(&mut cursor) {
            Ok(_) | Err(_) => {}
        }
    }

    #[test]
    fn truncated_frames_always_error(
        kind in any::<u8>(),
        place in any::<u16>(),
        addr in "\\PC{0,16}",
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        cut in any::<usize>(),
    ) {
        let frame = build_frame(kind, place, addr, payload);
        let wire = frame.to_wire();
        let keep = cut % wire.len(); // strictly shorter than the frame
        let mut cursor = &wire[..keep];
        let result = read_frame(&mut cursor);
        prop_assert!(result.is_err(), "truncated to {keep}/{} decoded", wire.len());
        if keep == 0 {
            prop_assert!(matches!(result, Err(FrameError::Closed)));
        }
    }

    #[test]
    fn random_bytes_never_panic_the_decoder(
        junk in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut cursor = &junk[..];
        // Decode frames until the soup runs out or errors; must not
        // panic and must not loop forever (each iteration consumes at
        // least the 4-byte header).
        for _ in 0..64 {
            match read_frame(&mut cursor) {
                Ok(_) => {}
                Err(_) => break,
            }
        }
        // Body decoding is total as well.
        let _ = Frame::decode_body(&junk);
    }
}

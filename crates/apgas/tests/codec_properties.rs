//! Property tests of the wire codec: round-trips, size contracts, and
//! robustness against arbitrary (possibly hostile) input bytes.

use dpx10_apgas::codec::{decode_exact, encode_to_vec};
use dpx10_apgas::Codec;
use proptest::prelude::*;

fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(v: &T) -> Result<(), TestCaseError> {
    let buf = encode_to_vec(v);
    prop_assert_eq!(buf.len(), v.wire_size(), "wire_size contract");
    let back: T = decode_exact(&buf).expect("well-formed bytes decode");
    prop_assert_eq!(&back, v);
    Ok(())
}

proptest! {
    #[test]
    fn ints_round_trip(a in any::<u64>(), b in any::<i32>(), c in any::<u16>()) {
        round_trip(&a)?;
        round_trip(&b)?;
        round_trip(&c)?;
    }

    #[test]
    fn floats_round_trip_bitwise(bits in any::<u64>()) {
        let v = f64::from_bits(bits);
        let buf = encode_to_vec(&v);
        let back: f64 = decode_exact(&buf).expect("decodes");
        prop_assert_eq!(back.to_bits(), bits);
    }

    #[test]
    fn vecs_round_trip(v in proptest::collection::vec(any::<u32>(), 0..64)) {
        round_trip(&v)?;
    }

    #[test]
    fn nested_round_trip(
        v in proptest::collection::vec((any::<u32>(), any::<i64>()), 0..16),
        opt in proptest::option::of(any::<u64>()),
        s in "\\PC{0,24}",
    ) {
        round_trip(&v)?;
        round_trip(&opt)?;
        round_trip(&s)?;
    }

    /// Arbitrary bytes never panic the decoder, and when they do decode
    /// the value re-encodes to a prefix-consistent form.
    #[test]
    fn decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut src = bytes.as_slice();
        if let Some(v) = Vec::<u16>::decode(&mut src) {
            let consumed = bytes.len() - src.len();
            let again = encode_to_vec(&v);
            prop_assert_eq!(again.as_slice(), &bytes[..consumed]);
        }
        let mut src = bytes.as_slice();
        let _ = String::decode(&mut src);
        let mut src = bytes.as_slice();
        let _ = Option::<f32>::decode(&mut src);
        let mut src = bytes.as_slice();
        let _ = bool::decode(&mut src);
    }

    /// Concatenated encodings decode back in sequence — the framing the
    /// mailbox layer relies on.
    #[test]
    fn encodings_self_frame(a in any::<u64>(), v in proptest::collection::vec(any::<u8>(), 0..16), b in any::<i16>()) {
        let mut buf = Vec::new();
        a.encode(&mut buf);
        v.encode(&mut buf);
        b.encode(&mut buf);
        let mut src = buf.as_slice();
        prop_assert_eq!(u64::decode(&mut src), Some(a));
        prop_assert_eq!(Vec::<u8>::decode(&mut src), Some(v));
        prop_assert_eq!(i16::decode(&mut src), Some(b));
        prop_assert!(src.is_empty());
    }
}

//! Property tests of the collective schedule (ISSUE 8 satellite): tree
//! shapes over place counts 1..=64 with arbitrary dead-place subsets —
//! every live place is reached exactly once, depth stays within
//! `⌈log2 P⌉`, and the reduce fold is independent of arrival order.

use std::collections::HashMap;

use dpx10_apgas::collectives::{fold_counts, CollectiveSchedule};
use proptest::prelude::*;

/// Simulates a repaired broadcast: starting from the root, every reached
/// rank relays to `relay_targets` (dead children replaced by their
/// subtrees). Returns how many times each rank was delivered to, plus
/// the hop depth at which it was first reached.
fn simulate_broadcast(sched: &CollectiveSchedule, n: usize, dead: &[bool]) -> (Vec<u32>, Vec<u32>) {
    let mut delivered = vec![0u32; n];
    let mut depth = vec![0u32; n];
    let mut frontier = vec![sched.root()];
    delivered[sched.root()] += 1;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &r in &frontier {
            for t in sched.relay_targets(r, |x| dead[x]) {
                delivered[t] += 1;
                depth[t] = depth[r] + 1;
                next.push(t);
            }
        }
        frontier = next;
    }
    (delivered, depth)
}

/// Derives a dead-set of `n` flags from arbitrary bytes; the root is
/// always alive (place 0 must survive — the Resilient X10 limitation).
fn dead_set(sched: &CollectiveSchedule, n: usize, bytes: &[u8]) -> Vec<bool> {
    let mut dead: Vec<bool> = (0..n)
        .map(|r| {
            bytes
                .get(r % bytes.len().max(1))
                .is_some_and(|b| b & (r as u8 + 1) != 0)
        })
        .collect();
    dead[sched.root()] = false;
    dead
}

proptest! {
    /// Every live rank is delivered to exactly once, dead ranks never,
    /// regardless of which subset died.
    #[test]
    fn broadcast_reaches_live_ranks_exactly_once(
        n in 1usize..=64,
        root_seed in any::<u64>(),
        bytes in proptest::collection::vec(any::<u8>(), 1..8),
    ) {
        let root = (root_seed % n as u64) as usize;
        let sched = CollectiveSchedule::new(n, root);
        let dead = dead_set(&sched, n, &bytes);
        let (delivered, _) = simulate_broadcast(&sched, n, &dead);
        for r in 0..n {
            if dead[r] {
                prop_assert_eq!(delivered[r], 0, "dead rank {} was delivered to", r);
            } else {
                prop_assert_eq!(delivered[r], 1, "rank {} delivered {} times", r, delivered[r]);
            }
        }
    }

    /// The fault-free tree never exceeds ⌈log2 P⌉ hops, and parent/child
    /// edges agree with each other.
    #[test]
    fn depth_and_edges_are_consistent(n in 1usize..=64, root_seed in any::<u64>()) {
        let root = (root_seed % n as u64) as usize;
        let sched = CollectiveSchedule::new(n, root);
        let (delivered, depth) = simulate_broadcast(&sched, n, &vec![false; n]);
        prop_assert!(delivered.iter().all(|&d| d == 1));
        let bound = sched.depth();
        prop_assert_eq!(bound, (usize::BITS - (n - 1).leading_zeros()));
        #[allow(clippy::needless_range_loop)]
        for r in 0..n {
            prop_assert!(depth[r] <= bound, "rank {} at depth {} > {}", r, depth[r], bound);
            for c in sched.children(r) {
                prop_assert_eq!(sched.parent(c), Some(r));
            }
            if let Some(p) = sched.parent(r) {
                prop_assert!(sched.children(p).contains(&r));
            }
            // A scatter hop to r carries exactly r's subtree: r itself
            // plus the union of its children's subtrees, disjointly.
            let mut sub = sched.subtree(r);
            sub.sort_unstable();
            let mut rebuilt: Vec<usize> = vec![r];
            for c in sched.children(r) {
                rebuilt.extend(sched.subtree(c));
            }
            rebuilt.sort_unstable();
            prop_assert_eq!(sub, rebuilt);
        }
    }

    /// Folding the same per-place counter entries in any arrival order —
    /// including duplicated (re-sent) frames — yields the same result.
    #[test]
    fn reduce_fold_is_order_independent(
        entries in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..32),
        seed in any::<u64>(),
    ) {
        let entries: Vec<(u16, u64)> =
            entries.into_iter().map(|(p, v)| (u16::from(p % 8), v)).collect();
        let mut forward = HashMap::new();
        fold_counts(&mut forward, &entries);

        // An arbitrary permutation with one chunk re-delivered.
        let mut shuffled = entries.clone();
        let mut s = seed | 1;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let dup = shuffled[0];
        shuffled.push(dup);
        let mut backward = HashMap::new();
        for e in shuffled {
            fold_counts(&mut backward, &[e]);
        }
        prop_assert_eq!(forward, backward);
    }
}

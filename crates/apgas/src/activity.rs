//! Activities: per-place worker pools and the `finish` construct.
//!
//! X10's `async S` spawns an activity; `finish { ... }` blocks until every
//! activity spawned (transitively) inside it has terminated (paper §II).
//! [`ActivityPool`] reproduces the worker threads of one place
//! (`X10_NTHREADS` of them) and [`FinishScope`] the termination counter.

use std::sync::Arc;
use std::thread::JoinHandle;

use dpx10_sync::channel::{self, Receiver, Sender};
use dpx10_sync::{Condvar, Mutex};

use crate::fault::{DeadPlaceError, LivenessBoard};
use crate::place::PlaceId;
use crate::stats::StatsBoard;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// An X10 `finish` block: counts outstanding activities and lets one
/// thread block until they have all completed.
///
/// Cloning shares the counter, so activities can themselves spawn
/// sub-activities under the same scope.
#[derive(Clone)]
pub struct FinishScope {
    inner: Arc<FinishInner>,
}

struct FinishInner {
    outstanding: Mutex<usize>,
    done: Condvar,
}

impl FinishScope {
    /// Creates an empty scope.
    pub fn new() -> Self {
        FinishScope {
            inner: Arc::new(FinishInner {
                outstanding: Mutex::new(0),
                done: Condvar::new(),
            }),
        }
    }

    /// Registers one activity. Called by the spawner *before* the
    /// activity is enqueued, so the count can never transiently hit zero
    /// while work remains.
    pub fn begin(&self) {
        *self.inner.outstanding.lock() += 1;
    }

    /// Marks one activity complete.
    pub fn end(&self) {
        let mut n = self.inner.outstanding.lock();
        debug_assert!(*n > 0, "FinishScope::end without matching begin");
        *n -= 1;
        if *n == 0 {
            self.inner.done.notify_all();
        }
    }

    /// Blocks until every registered activity has ended.
    pub fn wait(&self) {
        let mut n = self.inner.outstanding.lock();
        while *n > 0 {
            self.inner.done.wait(&mut n);
        }
    }

    /// Current outstanding count (racy; for diagnostics and tests).
    pub fn outstanding(&self) -> usize {
        *self.inner.outstanding.lock()
    }
}

impl Default for FinishScope {
    fn default() -> Self {
        FinishScope::new()
    }
}

/// The worker threads of one place.
///
/// Jobs execute FIFO across the pool's threads. If the place is killed on
/// the [`LivenessBoard`], queued and future jobs are silently discarded —
/// the data of a dead place is gone, so running its activities would be
/// meaningless (and unsound with respect to the failure model).
pub struct ActivityPool {
    place: PlaceId,
    tx: Option<Sender<Job>>,
    liveness: LivenessBoard,
    handles: Vec<JoinHandle<()>>,
}

impl ActivityPool {
    /// Spawns `threads` worker threads for `place`.
    pub fn new(place: PlaceId, threads: u16, liveness: LivenessBoard, stats: StatsBoard) -> Self {
        assert!(threads > 0, "a place needs at least one worker thread");
        let (tx, rx) = channel::unbounded::<Job>();
        let handles = (0..threads)
            .map(|t| {
                let rx: Receiver<Job> = rx.clone();
                let liveness = liveness.clone();
                let stats = stats.clone();
                std::thread::Builder::new()
                    .name(format!("place{}-w{}", place.0, t))
                    .spawn(move || {
                        for job in rx.iter() {
                            if !liveness.is_alive(place) {
                                // Dead place: drop the job. Keep draining so
                                // sender-side spawns never block, but do no
                                // work. (FinishScope ends are embedded in the
                                // job wrapper, so we must still run the
                                // wrapper's bookkeeping — see `spawn`.)
                                drop(job);
                                continue;
                            }
                            stats.place(place).on_task();
                            job();
                        }
                    })
                    .expect("spawning a worker thread")
            })
            .collect();
        ActivityPool {
            place,
            tx: Some(tx),
            liveness,
            handles,
        }
    }

    /// The place this pool serves.
    pub fn place(&self) -> PlaceId {
        self.place
    }

    /// Spawns an activity under `scope` (the X10 `async` inside `finish`).
    ///
    /// Fails with [`DeadPlaceError`] if the place is already dead. If the
    /// place dies after enqueueing, the closure is dropped unrun but the
    /// scope is still ended, so `finish` cannot hang on a fault — the
    /// caller learns about the failure through the liveness board, exactly
    /// like Resilient X10 surfaces `DeadPlaceException` at the `finish`.
    pub fn spawn<F>(&self, scope: &FinishScope, f: F) -> Result<(), DeadPlaceError>
    where
        F: FnOnce() + Send + 'static,
    {
        self.liveness.check(self.place)?;
        scope.begin();
        let guard = FinishGuard {
            scope: scope.clone(),
        };
        let wrapped: Job = Box::new(move || {
            let _guard = guard; // ends the scope whether `f` runs or the job is dropped
            f();
        });
        let tx = self.tx.as_ref().expect("pool not shut down");
        if tx.send(wrapped).is_err() {
            // Pool torn down between check and send; dropping the unsent
            // job (inside the SendError) ends the scope via its guard.
            return Err(DeadPlaceError { place: self.place });
        }
        Ok(())
    }

    /// Shuts the pool down and joins its threads. Queued jobs finish
    /// first (or are discarded if the place is dead).
    pub fn shutdown(&mut self) {
        self.tx = None; // disconnect -> workers drain and exit
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ActivityPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// A job discarded by a dead place never runs, so a naive `scope.end()`
// inside the closure body would be lost and `finish` would hang on any
// fault. `spawn` therefore moves a FinishGuard into the job: both paths —
// executed or dropped unrun — end the scope exactly once.
struct FinishGuard {
    scope: FinishScope,
}

impl Drop for FinishGuard {
    fn drop(&mut self) {
        self.scope.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn pool(place: u16, threads: u16) -> (ActivityPool, LivenessBoard) {
        let liveness = LivenessBoard::new(place + 1);
        let stats = StatsBoard::new(place + 1);
        (
            ActivityPool::new(PlaceId(place), threads, liveness.clone(), stats),
            liveness,
        )
    }

    #[test]
    fn finish_waits_for_all_activities() {
        let (pool, _) = pool(0, 2);
        let scope = FinishScope::new();
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let c = counter.clone();
            pool.spawn(&scope, move || {
                c.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        scope.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        assert_eq!(scope.outstanding(), 0);
    }

    #[test]
    fn nested_spawns_share_scope() {
        let (pool, _) = pool(0, 2);
        let pool = Arc::new(pool);
        let scope = FinishScope::new();
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let (p2, c2, s2) = (pool.clone(), counter.clone(), scope.clone());
            pool.spawn(&scope, move || {
                c2.fetch_add(1, Ordering::Relaxed);
                let c3 = c2.clone();
                p2.spawn(&s2, move || {
                    c3.fetch_add(1, Ordering::Relaxed);
                })
                .unwrap();
            })
            .unwrap();
        }
        scope.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn spawn_on_dead_place_fails_fast() {
        let (pool, liveness) = pool(1, 1);
        liveness.kill(PlaceId(1));
        let scope = FinishScope::new();
        let err = pool.spawn(&scope, || {}).unwrap_err();
        assert_eq!(err.place, PlaceId(1));
        assert_eq!(scope.outstanding(), 0);
    }

    #[test]
    fn kill_mid_run_does_not_hang_finish() {
        let (pool, liveness) = pool(1, 1);
        let scope = FinishScope::new();
        let ran = Arc::new(AtomicUsize::new(0));
        // First job blocks until we kill the place, then many more queue up.
        let gate = Arc::new(Mutex::new(()));
        let held = gate.lock();
        {
            let gate = gate.clone();
            pool.spawn(&scope, move || {
                let _g = gate.lock(); // waits for the kill below
            })
            .unwrap();
        }
        for _ in 0..16 {
            let r = ran.clone();
            pool.spawn(&scope, move || {
                r.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        liveness.kill(PlaceId(1));
        drop(held); // release the first job
        scope.wait(); // must not hang: dropped jobs still end the scope
        assert_eq!(ran.load(Ordering::Relaxed), 0, "queued jobs were discarded");
    }

    #[test]
    fn shutdown_runs_queued_jobs() {
        let (mut pool, _) = pool(0, 1);
        let scope = FinishScope::new();
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let c = counter.clone();
            pool.spawn(&scope, move || {
                c.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }
}

//! A miniature APGAS (Asynchronous Partitioned Global Address Space)
//! runtime — the substrate the DPX10 framework runs on.
//!
//! The paper's framework is written in X10, whose runtime provides
//! *places* (OS processes owning a partition of the data, paper §II),
//! *activities* (`async S`), the `finish` termination construct, remote
//! execution (`at (p) S`) and failure reporting (`DeadPlaceException` from
//! Resilient X10). None of that exists in Rust, so this crate rebuilds the
//! subset DPX10 needs:
//!
//! * [`PlaceId`]/[`Topology`] — places realised as in-process worker
//!   pools, grouped into *nodes* exactly like the paper's deployment
//!   (2 places per node, 6 worker threads per place on Tianhe-1A).
//! * [`ActivityPool`] — per-place worker threads executing spawned
//!   activities, with a [`FinishScope`] reproducing X10's `finish`.
//! * [`Mailbox`] — typed inter-place channels with byte accounting; every
//!   transfer is priced by a [`NetworkModel`] so experiments can report
//!   communication volume and (simulated) communication time honestly.
//! * [`Codec`] — a small hand-rolled wire format: the byte count a value
//!   occupies on the interconnect, and the actual encoding the socket
//!   backend puts on the wire.
//! * [`Transport`] — the seam between engines and substrates, with two
//!   implementations: [`LocalTransport`] (places as threads, transfers
//!   priced by the cost model) and [`socket`] (one OS process per place
//!   over a real TCP mesh, transfers counted as framed bytes).
//! * [`fault`] — per-place liveness flags and [`DeadPlaceError`],
//!   mirroring Resilient X10's failure reporting, including its documented
//!   limitation that place 0 must survive. The socket transport feeds the
//!   same board when it *detects* a dead peer (closed connection, missed
//!   heartbeats), so injected and real failures follow one code path.
//!
//! The single-machine substitution is deliberate and documented in
//! DESIGN.md §3: this container has one CPU core, so cluster-scale
//! behaviour is reproduced by the deterministic simulator in `dpx10-sim`,
//! while this crate provides real concurrent execution (threads or
//! processes) for functional and fault-tolerance correctness.

#![warn(missing_docs)]

pub mod activity;
pub mod chaos;
pub mod coalesce;
pub mod codec;
pub mod collective;
pub mod collectives;
pub mod fault;
pub mod mailbox;
pub mod membership;
pub mod network;
pub mod place;
pub mod runtime;
pub mod socket;
pub mod stats;
pub mod transport;

pub use activity::{ActivityPool, FinishScope};
pub use chaos::{
    ChaosCounters, ChaosPlan, ChaosRng, ChaosTransport, ElasticEvent, ElasticPlan, ElasticVerb,
    HeartbeatFlap, KillSpec, KillTrigger, NetChaos,
};
pub use coalesce::{CoalesceConfig, Coalescible, CoalescingTransport};
pub use codec::Codec;
pub use collectives::{fold_counts, CollFrame, CollectiveSchedule};
pub use fault::{DeadPlaceError, LivenessBoard};
pub use mailbox::{Mailbox, MailboxSender};
pub use membership::{MemberState, MembershipError, RosterBoard};
pub use network::NetworkModel;
pub use place::{PlaceId, Topology};
pub use runtime::{Runtime, RuntimeConfig};
pub use socket::launch::{launch_places, PlaceChildren};
pub use socket::{JoinConfig, SocketChaos, SocketConfig, SocketNode, SocketTransport};
pub use stats::{PlaceStats, StatsBoard, StatsSnapshot};
pub use transport::{LocalTransport, Transport};

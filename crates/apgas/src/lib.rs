//! A miniature APGAS (Asynchronous Partitioned Global Address Space)
//! runtime — the substrate the DPX10 framework runs on.
//!
//! The paper's framework is written in X10, whose runtime provides
//! *places* (OS processes owning a partition of the data, paper §II),
//! *activities* (`async S`), the `finish` termination construct, remote
//! execution (`at (p) S`) and failure reporting (`DeadPlaceException` from
//! Resilient X10). None of that exists in Rust, so this crate rebuilds the
//! subset DPX10 needs:
//!
//! * [`PlaceId`]/[`Topology`] — places realised as in-process worker
//!   pools, grouped into *nodes* exactly like the paper's deployment
//!   (2 places per node, 6 worker threads per place on Tianhe-1A).
//! * [`ActivityPool`] — per-place worker threads executing spawned
//!   activities, with a [`FinishScope`] reproducing X10's `finish`.
//! * [`Mailbox`] — typed inter-place channels with byte accounting; every
//!   transfer is priced by a [`NetworkModel`] so experiments can report
//!   communication volume and (simulated) communication time honestly.
//! * [`Codec`] — a small hand-rolled wire format used to measure the bytes
//!   a value would occupy on a real interconnect (the crate never touches a
//!   socket: places are threads; "the network" is a cost model).
//! * [`fault`] — per-place liveness flags and [`DeadPlaceError`],
//!   mirroring Resilient X10's failure reporting, including its documented
//!   limitation that place 0 must survive.
//!
//! The single-machine substitution is deliberate and documented in
//! DESIGN.md §3: this container has one CPU core, so cluster-scale
//! behaviour is reproduced by the deterministic simulator in `dpx10-sim`,
//! while this crate provides real concurrent execution for functional and
//! fault-tolerance correctness.

#![warn(missing_docs)]

pub mod activity;
pub mod codec;
pub mod collective;
pub mod fault;
pub mod mailbox;
pub mod network;
pub mod place;
pub mod runtime;
pub mod stats;

pub use activity::{ActivityPool, FinishScope};
pub use codec::Codec;
pub use fault::{DeadPlaceError, LivenessBoard};
pub use mailbox::{Mailbox, MailboxSender};
pub use network::NetworkModel;
pub use place::{PlaceId, Topology};
pub use runtime::{Runtime, RuntimeConfig};
pub use stats::{PlaceStats, StatsBoard, StatsSnapshot};

//! Dynamic place membership: the roster of an elastic mesh.
//!
//! The original socket mesh fixes its place set at launch; every table
//! (outboxes, heartbeat writers, liveness flags) is sized `places` and
//! every loop runs `0..places`. Elasticity replaces that assumption with
//! a [`RosterBoard`]: a versioned membership table sized to a fixed
//! *capacity*, where each slot moves through a small life cycle:
//!
//! ```text
//!  Vacant ──admit──▶ Joining ──activate──▶ Active ──drain──▶ Draining
//!     ▲                                       │                  │
//!     │                                     crash              leave
//!     │                                       ▼                  ▼
//!     └────────────(ids are not reused)──── Dead               Left
//! ```
//!
//! A *join* walks Vacant → Joining → Active (the joiner handshakes into
//! the running mesh: contact place 0, receive the peer roster, dial every
//! member, announce readiness). A *drain* walks Active → Draining → Left
//! (the place relocates the chunks it owns, then signs off with a `Leave`
//! frame). A crash walks Active → Dead via the ordinary liveness
//! detection path. `Left` is deliberately distinct from `Dead`: a drained
//! place must never trigger recovery.
//!
//! Place ids are never reused within one mesh lifetime — a fresh joiner
//! always gets a fresh id, so an epoch fence can name "the roster as of
//! version v" unambiguously.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dpx10_sync::Mutex;

use crate::place::PlaceId;

/// Where one place slot is in its membership life cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemberState {
    /// The slot has never been occupied.
    Vacant,
    /// Admission granted; the joiner is still dialing peers.
    Joining,
    /// A full member of the mesh.
    Active,
    /// Relocating its owned state before leaving.
    Draining,
    /// Departed gracefully (drained). Never recovers, never recomputes.
    Left,
    /// Crash-departed; the recovery path owns whatever it held.
    Dead,
}

impl MemberState {
    /// Whether a place in this state participates in work distribution.
    pub fn is_member(self) -> bool {
        matches!(self, MemberState::Active | MemberState::Draining)
    }
}

/// A membership transition that the state machine forbids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MembershipError {
    /// The slot the transition targeted.
    pub place: PlaceId,
    /// Its state at the time.
    pub from: MemberState,
    /// The transition that was attempted.
    pub attempted: &'static str,
}

impl fmt::Display for MembershipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "membership: cannot {} {} in state {:?}",
            self.attempted, self.place, self.from
        )
    }
}

impl std::error::Error for MembershipError {}

struct Roster {
    states: Vec<MemberState>,
    /// Listen address of each slot ("" when unknown/vacant) — the
    /// coordinator's source for `JoinAccept` peer maps.
    addrs: Vec<String>,
}

/// The shared, versioned membership table of one mesh.
///
/// Cloning shares the underlying table (it is an `Arc` internally), so a
/// socket node, its acceptor thread and the engine above all observe the
/// same roster. Every successful transition bumps the version counter,
/// letting pollers detect change without diffing.
#[derive(Clone)]
pub struct RosterBoard {
    inner: Arc<Mutex<Roster>>,
    version: Arc<AtomicU64>,
}

impl RosterBoard {
    /// A roster with `initial` active founding members and room to grow
    /// to `capacity` places. `capacity` is clamped up to `initial`.
    pub fn new(initial: u16, capacity: u16) -> Self {
        let capacity = capacity.max(initial);
        let states = (0..capacity)
            .map(|p| {
                if p < initial {
                    MemberState::Active
                } else {
                    MemberState::Vacant
                }
            })
            .collect();
        RosterBoard {
            inner: Arc::new(Mutex::new(Roster {
                states,
                addrs: vec![String::new(); capacity as usize],
            })),
            version: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Total slots, occupied or not.
    pub fn capacity(&self) -> u16 {
        self.inner.lock().states.len() as u16
    }

    /// Monotonic change counter; bumps on every successful transition.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// The state of `place` (`Vacant` when out of range).
    pub fn state(&self, place: PlaceId) -> MemberState {
        self.inner
            .lock()
            .states
            .get(place.index())
            .copied()
            .unwrap_or(MemberState::Vacant)
    }

    /// Whether `place` currently participates in work distribution.
    pub fn is_member(&self, place: PlaceId) -> bool {
        self.state(place).is_member()
    }

    /// Ids of all current members (Active or Draining), in order.
    pub fn members(&self) -> Vec<PlaceId> {
        let inner = self.inner.lock();
        (0..inner.states.len() as u16)
            .map(PlaceId)
            .filter(|p| inner.states[p.index()].is_member())
            .collect()
    }

    /// Number of current members.
    pub fn member_count(&self) -> u16 {
        self.members().len() as u16
    }

    /// The recorded listen address of `place` ("" when unknown).
    pub fn addr(&self, place: PlaceId) -> String {
        self.inner
            .lock()
            .addrs
            .get(place.index())
            .cloned()
            .unwrap_or_default()
    }

    /// Records `place`'s listen address.
    pub fn set_addr(&self, place: PlaceId, addr: impl Into<String>) {
        let mut inner = self.inner.lock();
        if let Some(slot) = inner.addrs.get_mut(place.index()) {
            *slot = addr.into();
        }
    }

    /// The listen address of every slot, "" for vacant ones — the
    /// payload of a `JoinAccept`.
    pub fn addrs(&self) -> Vec<String> {
        self.inner.lock().addrs.clone()
    }

    fn transition(
        &self,
        place: PlaceId,
        attempted: &'static str,
        allowed: &[MemberState],
        to: MemberState,
    ) -> Result<(), MembershipError> {
        let mut inner = self.inner.lock();
        let from = inner
            .states
            .get(place.index())
            .copied()
            .unwrap_or(MemberState::Vacant);
        let legal = allowed.contains(&from)
            || (place.index() >= inner.states.len() && allowed.contains(&MemberState::Vacant));
        if !legal || place.index() >= inner.states.len() {
            return Err(MembershipError {
                place,
                from,
                attempted,
            });
        }
        inner.states[place.index()] = to;
        drop(inner);
        self.version.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// Grants the lowest vacant slot to a joiner, marking it `Joining`
    /// and recording `addr`. `None` when the mesh is at capacity.
    pub fn admit(&self, addr: impl Into<String>) -> Option<PlaceId> {
        let mut inner = self.inner.lock();
        let idx = inner
            .states
            .iter()
            .position(|s| *s == MemberState::Vacant)?;
        inner.states[idx] = MemberState::Joining;
        inner.addrs[idx] = addr.into();
        drop(inner);
        self.version.fetch_add(1, Ordering::AcqRel);
        Some(PlaceId(idx as u16))
    }

    /// Joining → Active: the joiner finished dialing the mesh.
    pub fn activate(&self, place: PlaceId) -> Result<(), MembershipError> {
        self.transition(
            place,
            "activate",
            &[MemberState::Joining],
            MemberState::Active,
        )
    }

    /// Marks a previously unknown member Active directly — how a *peer*
    /// (not the coordinator) learns of a joiner from its `JoinHello`.
    pub fn observe_join(&self, place: PlaceId) -> Result<(), MembershipError> {
        self.transition(
            place,
            "observe join of",
            &[MemberState::Vacant, MemberState::Joining],
            MemberState::Active,
        )
    }

    /// Active → Draining: the place starts relocating its chunks.
    pub fn start_drain(&self, place: PlaceId) -> Result<(), MembershipError> {
        self.transition(
            place,
            "drain",
            &[MemberState::Active],
            MemberState::Draining,
        )
    }

    /// Draining (or Active, for peers that missed the drain start) →
    /// Left: the `Leave` sign-off arrived.
    pub fn leave(&self, place: PlaceId) -> Result<(), MembershipError> {
        self.transition(
            place,
            "remove",
            &[MemberState::Draining, MemberState::Active],
            MemberState::Left,
        )
    }

    /// Any member state → Dead: liveness detection reported a crash.
    /// Idempotent on already-dead slots; a `Left` place stays `Left`
    /// (its sockets closing after a graceful leave is not a death).
    pub fn mark_dead(&self, place: PlaceId) {
        let mut inner = self.inner.lock();
        let Some(slot) = inner.states.get_mut(place.index()) else {
            return;
        };
        match *slot {
            MemberState::Left | MemberState::Dead | MemberState::Vacant => {}
            _ => {
                *slot = MemberState::Dead;
                drop(inner);
                self.version.fetch_add(1, Ordering::AcqRel);
            }
        }
    }
}

impl fmt::Debug for RosterBoard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("RosterBoard")
            .field("version", &self.version())
            .field("states", &inner.states)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn founding_members_are_active() {
        let r = RosterBoard::new(3, 5);
        assert_eq!(r.capacity(), 5);
        assert_eq!(r.member_count(), 3);
        assert_eq!(r.state(PlaceId(2)), MemberState::Active);
        assert_eq!(r.state(PlaceId(3)), MemberState::Vacant);
        assert_eq!(r.state(PlaceId(9)), MemberState::Vacant);
        assert_eq!(r.version(), 0);
    }

    #[test]
    fn capacity_clamps_up_to_initial() {
        let r = RosterBoard::new(4, 2);
        assert_eq!(r.capacity(), 4);
        assert_eq!(r.member_count(), 4);
    }

    #[test]
    fn join_life_cycle() {
        let r = RosterBoard::new(2, 4);
        let p = r.admit("127.0.0.1:7001").expect("room");
        assert_eq!(p, PlaceId(2));
        assert_eq!(r.state(p), MemberState::Joining);
        assert!(!r.is_member(p), "joining places are not yet members");
        assert_eq!(r.addr(p), "127.0.0.1:7001");
        r.activate(p).unwrap();
        assert!(r.is_member(p));
        assert_eq!(r.members(), vec![PlaceId(0), PlaceId(1), PlaceId(2)]);
    }

    #[test]
    fn admit_exhausts_capacity() {
        let r = RosterBoard::new(1, 2);
        assert_eq!(r.admit("a"), Some(PlaceId(1)));
        assert_eq!(r.admit("b"), None, "mesh at capacity");
    }

    #[test]
    fn drain_leaves_without_death() {
        let r = RosterBoard::new(3, 3);
        r.start_drain(PlaceId(2)).unwrap();
        assert!(
            r.is_member(PlaceId(2)),
            "a draining place still owns chunks"
        );
        r.leave(PlaceId(2)).unwrap();
        assert_eq!(r.state(PlaceId(2)), MemberState::Left);
        assert_eq!(r.member_count(), 2);
        // Its links closing afterwards must not flip it to Dead.
        r.mark_dead(PlaceId(2));
        assert_eq!(r.state(PlaceId(2)), MemberState::Left);
    }

    #[test]
    fn illegal_transitions_are_rejected() {
        let r = RosterBoard::new(2, 3);
        assert!(r.activate(PlaceId(0)).is_err(), "already active");
        assert!(r.start_drain(PlaceId(2)).is_err(), "vacant");
        assert!(r.leave(PlaceId(2)).is_err(), "vacant");
        assert!(r.activate(PlaceId(9)).is_err(), "out of range");
        let err = r.start_drain(PlaceId(2)).unwrap_err();
        assert_eq!(err.from, MemberState::Vacant);
        assert!(err.to_string().contains("cannot drain"));
    }

    #[test]
    fn ids_are_not_reused_after_leave() {
        let r = RosterBoard::new(1, 3);
        let a = r.admit("a").unwrap();
        r.activate(a).unwrap();
        r.start_drain(a).unwrap();
        r.leave(a).unwrap();
        let b = r.admit("b").unwrap();
        assert_ne!(a, b, "a left slot is never handed out again");
        assert_eq!(b, PlaceId(2));
    }

    #[test]
    fn versions_bump_on_every_transition_and_clones_share() {
        let r = RosterBoard::new(2, 4);
        let view = r.clone();
        let v0 = view.version();
        let p = r.admit("x").unwrap();
        r.activate(p).unwrap();
        r.mark_dead(PlaceId(1));
        assert_eq!(view.version(), v0 + 3);
        assert_eq!(view.state(PlaceId(1)), MemberState::Dead);
        // Idempotent death does not bump.
        r.mark_dead(PlaceId(1));
        assert_eq!(view.version(), v0 + 3);
    }

    #[test]
    fn observe_join_accepts_unknown_and_joining() {
        let r = RosterBoard::new(2, 4);
        r.observe_join(PlaceId(3)).unwrap();
        assert_eq!(r.state(PlaceId(3)), MemberState::Active);
        assert!(r.observe_join(PlaceId(0)).is_err(), "already active");
    }

    #[test]
    fn addrs_round_trip() {
        let r = RosterBoard::new(2, 3);
        r.set_addr(PlaceId(0), "127.0.0.1:1");
        r.set_addr(PlaceId(1), "127.0.0.1:2");
        assert_eq!(r.addrs(), vec!["127.0.0.1:1", "127.0.0.1:2", ""]);
    }
}

//! Adaptive message coalescing: per-destination aggregation buffers.
//!
//! The paper's comms plane (§VI-C) ships one message per finished vertex.
//! At Fig. 10/11 scales that is one frame, one syscall and one codec pass
//! per cell boundary on the socket backend. PGAS runtimes (DART-MPI, the
//! relocatable-collections APGAS work) win by aggregating small puts into
//! per-destination batches; [`CoalescingTransport`] does the same for any
//! message type that knows how to fold itself into a batch
//! ([`Coalescible`]).
//!
//! The flush policy is adaptive on three triggers:
//!
//! * **byte budget** — a buffer whose priced payload reaches
//!   [`CoalesceConfig::max_bytes`] is flushed by the send that filled it;
//! * **entry count** — a buffer holding [`CoalesceConfig::max_entries`]
//!   messages flushes regardless of size (bounds decode cost and keeps
//!   batch wire variants within fuzz-tested bounds);
//! * **idle drain** — engines call [`Transport::flush`] when a worker runs
//!   out of local work, so latency under low load degenerates to the
//!   uncoalesced path instead of waiting for a budget that never fills.
//!
//! Messages the protocol cannot batch (remote-exec verbs with
//! request/reply pairing) first flush the buffer of their lane — so the
//! relative order of a batched message and a later unbatchable one is
//! preserved — then pass straight through.
//!
//! Recovery interaction: the wrapper is built fresh each epoch, so
//! buffered traffic of an abandoned epoch dies with its wrapper, and a
//! flush that hits a [`DeadPlaceError`] simply drops the drained batch —
//! the epoch is being torn down and recovery recomputes the unacked
//! vertices (DESIGN.md, comms plane).
//!
//! Multi-job interaction: the job server builds one wrapper per job per
//! epoch around that job's namespaced send path, so coalescing lanes
//! are effectively keyed by `(job, destination)` — one job's batches
//! never mix frames with another's, a job's abort drops only its own
//! buffered traffic, and the per-epoch lifetime argument above holds
//! per job unchanged.

use std::sync::Arc;
use std::time::Duration;

use dpx10_obs::{EventKind, Recorder, RUNTIME_WORKER};

use crate::fault::{DeadPlaceError, LivenessBoard};
use crate::mailbox::Envelope;
use crate::place::PlaceId;
use crate::stats::StatsBoard;
use dpx10_sync::Mutex;

/// A message type that can fold itself into per-destination batches.
///
/// Implemented by the engine protocol (`Msg` in `dpx10-core`), which maps
/// its unit variants onto `DoneBatch`/`PullBatch`/`PullValBatch` wire
/// variants; this crate only sees the fold/drain seam.
pub trait Coalescible: Send + Sized {
    /// The per-destination aggregation buffer.
    type Batch: Send + Default;

    /// Folds `self` into `batch`; returns `Err(self)` when this message
    /// cannot be batched and must travel alone (the caller flushes the
    /// buffer first to preserve ordering).
    fn absorb(self, batch: &mut Self::Batch) -> Result<(), Self>;

    /// Messages currently held in `batch`.
    fn batch_entries(batch: &Self::Batch) -> usize;

    /// Priced payload bytes currently held in `batch` (same currency as
    /// the `wire_bytes` argument of [`crate::Transport::send`]).
    fn batch_bytes(batch: &Self::Batch) -> usize;

    /// Drains `batch` into ready-to-send messages, one per non-empty
    /// message family, each with its priced wire size. `batch` is empty
    /// afterwards.
    fn drain(batch: &mut Self::Batch) -> Vec<(Self, usize)>;
}

/// Flush thresholds of a [`CoalescingTransport`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoalesceConfig {
    /// Flush a buffer once its priced payload reaches this many bytes.
    pub max_bytes: usize,
    /// Flush a buffer once it holds this many messages.
    pub max_entries: usize,
}

impl CoalesceConfig {
    /// Default cap on messages per batch. Bounds the decode cost of one
    /// batch and keeps generated batches inside the fuzzed boundary.
    pub const MAX_ENTRIES: usize = 256;

    /// A config flushing at `max_bytes` with the default entry cap.
    pub fn bytes(max_bytes: usize) -> Self {
        CoalesceConfig {
            max_bytes: max_bytes.max(1),
            max_entries: Self::MAX_ENTRIES,
        }
    }
}

/// A [`Transport`](crate::Transport) decorator that aggregates batchable
/// messages into per-`(src, dst)` buffers and flushes them as single
/// inner sends (one wire frame on the socket backend).
pub struct CoalescingTransport<M: Coalescible> {
    inner: Arc<dyn crate::Transport<M>>,
    config: CoalesceConfig,
    /// Buffer for traffic from place `s` to place `d` at index
    /// `s * places + d`.
    bufs: Vec<Mutex<M::Batch>>,
    places: u16,
    stats: StatsBoard,
    recorder: Recorder,
}

impl<M: Coalescible> CoalescingTransport<M> {
    /// Wraps `inner` with aggregation buffers. Batch flushes are counted
    /// on `stats` ([`crate::PlaceStats::on_batch`]) and surface as
    /// [`EventKind::BatchFlush`] instants on `recorder`.
    pub fn new(
        inner: Arc<dyn crate::Transport<M>>,
        config: CoalesceConfig,
        stats: StatsBoard,
        recorder: Recorder,
    ) -> Self {
        let places = inner.num_places();
        let bufs = (0..usize::from(places) * usize::from(places))
            .map(|_| Mutex::new(M::Batch::default()))
            .collect();
        CoalescingTransport {
            inner,
            config,
            bufs,
            places,
            stats,
            recorder,
        }
    }

    fn buf(&self, src: PlaceId, dst: PlaceId) -> &Mutex<M::Batch> {
        &self.bufs[src.index() * usize::from(self.places) + dst.index()]
    }

    /// Drains the `(src, dst)` buffer into the inner transport. A dead
    /// destination drops the drained traffic — the epoch is being torn
    /// down and recovery recomputes the unacked vertices.
    fn flush_one(&self, src: PlaceId, dst: PlaceId) -> Result<(), DeadPlaceError> {
        let drained = {
            let mut batch = self.buf(src, dst).lock();
            let entries = M::batch_entries(&batch);
            if entries == 0 {
                return Ok(());
            }
            self.stats.place(src).on_batch(entries);
            if self.recorder.enabled() {
                self.recorder.instant_now(
                    src.0,
                    RUNTIME_WORKER,
                    EventKind::BatchFlush,
                    entries as u64,
                );
            }
            M::drain(&mut batch)
        };
        for (msg, wire_bytes) in drained {
            self.inner.send(src, dst, msg, wire_bytes)?;
        }
        Ok(())
    }
}

impl<M: Coalescible> crate::Transport<M> for CoalescingTransport<M> {
    fn num_places(&self) -> u16 {
        self.places
    }

    fn liveness(&self) -> &LivenessBoard {
        self.inner.liveness()
    }

    fn send(
        &self,
        src: PlaceId,
        dst: PlaceId,
        msg: M,
        wire_bytes: usize,
    ) -> Result<(), DeadPlaceError> {
        self.liveness().check(dst)?;
        let over = {
            let mut batch = self.buf(src, dst).lock();
            match msg.absorb(&mut batch) {
                Ok(()) => {
                    M::batch_bytes(&batch) >= self.config.max_bytes
                        || M::batch_entries(&batch) >= self.config.max_entries
                }
                Err(msg) => {
                    drop(batch);
                    // Unbatchable: flush the lane first so ordering
                    // against earlier batched traffic is preserved.
                    self.flush_one(src, dst)?;
                    return self.inner.send(src, dst, msg, wire_bytes);
                }
            }
        };
        if over {
            self.flush_one(src, dst)?;
        }
        Ok(())
    }

    fn try_recv(&self, at: PlaceId) -> Option<Envelope<M>> {
        self.inner.try_recv(at)
    }

    fn recv_timeout(&self, at: PlaceId, timeout: Duration) -> Option<Envelope<M>> {
        self.inner.recv_timeout(at, timeout)
    }

    fn flush(&self, at: PlaceId) {
        for d in 0..self.places {
            // Dead peers drop their lane's traffic; recovery recomputes.
            let _ = self.flush_one(at, PlaceId(d));
        }
        self.inner.flush(at);
    }

    fn shutdown(&self) {
        for s in 0..self.places {
            self.flush(PlaceId(s));
        }
        self.inner.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkModel;
    use crate::place::Topology;
    use crate::transport::{LocalTransport, Transport};

    /// Toy protocol: even numbers batch, odd numbers travel alone.
    #[derive(Debug, PartialEq)]
    enum Toy {
        Even(u64),
        Odd(u64),
        Batch(Vec<u64>),
    }

    #[derive(Default)]
    struct ToyBatch(Vec<u64>);

    impl Coalescible for Toy {
        type Batch = ToyBatch;

        fn absorb(self, batch: &mut ToyBatch) -> Result<(), Self> {
            match self {
                Toy::Even(n) => {
                    batch.0.push(n);
                    Ok(())
                }
                other => Err(other),
            }
        }

        fn batch_entries(batch: &ToyBatch) -> usize {
            batch.0.len()
        }

        fn batch_bytes(batch: &ToyBatch) -> usize {
            8 * batch.0.len()
        }

        fn drain(batch: &mut ToyBatch) -> Vec<(Self, usize)> {
            if batch.0.is_empty() {
                return Vec::new();
            }
            let items = std::mem::take(&mut batch.0);
            let bytes = 8 * items.len();
            vec![(Toy::Batch(items), bytes)]
        }
    }

    fn rig(places: u16, config: CoalesceConfig) -> (CoalescingTransport<Toy>, StatsBoard) {
        let stats = StatsBoard::new(places);
        let inner: Arc<dyn Transport<Toy>> = Arc::new(LocalTransport::new(
            Topology::flat(places),
            NetworkModel::free(),
            LivenessBoard::new(places),
            stats.clone(),
        ));
        let t = CoalescingTransport::new(inner, config, stats.clone(), Recorder::disabled());
        (t, stats)
    }

    #[test]
    fn buffers_until_byte_budget() {
        let (t, stats) = rig(2, CoalesceConfig::bytes(32));
        for n in 0..3u64 {
            t.send(PlaceId(0), PlaceId(1), Toy::Even(2 * n), 8).unwrap();
            assert!(t.try_recv(PlaceId(1)).is_none(), "buffered below budget");
        }
        // Fourth send reaches 32 priced bytes and flushes one batch.
        t.send(PlaceId(0), PlaceId(1), Toy::Even(6), 8).unwrap();
        match t.try_recv(PlaceId(1)).unwrap().msg {
            Toy::Batch(items) => assert_eq!(items, vec![0, 2, 4, 6]),
            other => panic!("expected a batch, got {other:?}"),
        }
        let snap = stats.snapshot();
        assert_eq!(snap.batches_sent, 1);
        assert_eq!(snap.batched_msgs, 4);
        // One inner send carried all four messages.
        assert_eq!(snap.messages_sent, 1);
    }

    #[test]
    fn entry_cap_flushes_regardless_of_bytes() {
        let (t, _stats) = rig(
            2,
            CoalesceConfig {
                max_bytes: usize::MAX,
                max_entries: 2,
            },
        );
        t.send(PlaceId(0), PlaceId(1), Toy::Even(0), 8).unwrap();
        assert!(t.try_recv(PlaceId(1)).is_none());
        t.send(PlaceId(0), PlaceId(1), Toy::Even(2), 8).unwrap();
        match t.try_recv(PlaceId(1)).unwrap().msg {
            Toy::Batch(items) => assert_eq!(items.len(), 2),
            other => panic!("expected a batch, got {other:?}"),
        }
    }

    #[test]
    fn unbatchable_messages_flush_their_lane_first() {
        let (t, _stats) = rig(2, CoalesceConfig::bytes(1 << 20));
        t.send(PlaceId(0), PlaceId(1), Toy::Even(4), 8).unwrap();
        t.send(PlaceId(0), PlaceId(1), Toy::Odd(5), 8).unwrap();
        // The buffered batch must arrive before the pass-through message.
        match t.try_recv(PlaceId(1)).unwrap().msg {
            Toy::Batch(items) => assert_eq!(items, vec![4]),
            other => panic!("expected the flushed batch first, got {other:?}"),
        }
        assert_eq!(t.try_recv(PlaceId(1)).unwrap().msg, Toy::Odd(5));
    }

    #[test]
    fn idle_flush_drains_every_destination() {
        let (t, _stats) = rig(3, CoalesceConfig::bytes(1 << 20));
        t.send(PlaceId(0), PlaceId(1), Toy::Even(2), 8).unwrap();
        t.send(PlaceId(0), PlaceId(2), Toy::Even(4), 8).unwrap();
        assert!(t.try_recv(PlaceId(1)).is_none());
        t.flush(PlaceId(0));
        assert!(matches!(t.try_recv(PlaceId(1)).unwrap().msg, Toy::Batch(_)));
        assert!(matches!(t.try_recv(PlaceId(2)).unwrap().msg, Toy::Batch(_)));
    }

    #[test]
    fn dead_destination_drops_buffered_traffic() {
        let (t, _stats) = rig(2, CoalesceConfig::bytes(1 << 20));
        t.send(PlaceId(0), PlaceId(1), Toy::Even(2), 8).unwrap();
        t.liveness().kill(PlaceId(1));
        // New sends fail fast; the flush swallows the dead lane.
        assert!(t.send(PlaceId(0), PlaceId(1), Toy::Even(4), 8).is_err());
        t.flush(PlaceId(0));
        assert!(t.try_recv(PlaceId(1)).is_none());
    }

    #[test]
    fn flush_records_batch_events() {
        let stats = StatsBoard::new(2);
        let inner: Arc<dyn Transport<Toy>> = Arc::new(LocalTransport::new(
            Topology::flat(2),
            NetworkModel::free(),
            LivenessBoard::new(2),
            stats.clone(),
        ));
        let recorder = Recorder::new(2);
        let t = CoalescingTransport::new(
            inner,
            CoalesceConfig::bytes(1 << 20),
            stats,
            recorder.clone(),
        );
        t.send(PlaceId(0), PlaceId(1), Toy::Even(2), 8).unwrap();
        t.send(PlaceId(0), PlaceId(1), Toy::Even(4), 8).unwrap();
        t.flush(PlaceId(0));
        let trace = recorder.drain();
        let flushes: Vec<_> = trace
            .events
            .iter()
            .filter(|e| e.kind == EventKind::BatchFlush)
            .collect();
        assert_eq!(flushes.len(), 1);
        assert_eq!(flushes[0].arg, 2, "batch occupancy at flush time");
    }
}

//! Places and the node topology.

use std::fmt;

/// Identifier of an APGAS place.
///
/// A place is the X10 unit of data + compute locality — "a collection of
/// data and worker threads operating on the data", typically one OS
/// process (paper §II). Places are numbered densely from 0; place 0 hosts
/// the coordinator, as in X10 where `main` starts at Place(0).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlaceId(pub u16);

impl PlaceId {
    /// The coordinator place.
    pub const ZERO: PlaceId = PlaceId(0);

    /// Index form for direct vector addressing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Place({})", self.0)
    }
}

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "place {}", self.0)
    }
}

/// The cluster shape: how many nodes, how many places per node, and how
/// many worker threads (X10 `X10_NTHREADS`) each place runs.
///
/// The paper's experiments set `X10_NPLACES = 2 × nodes` and
/// `X10_NTHREADS = 6` (§VIII); [`Topology::paper`] reproduces that. The
/// node grouping matters to the network model: messages between places on
/// the same node are priced as shared-memory transfers, messages across
/// nodes as InfiniBand transfers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    /// Number of physical nodes.
    pub nodes: u16,
    /// Places per node (paper default: 2, one per processor socket).
    pub places_per_node: u16,
    /// Worker threads per place (paper default: 6, one per core).
    pub threads_per_place: u16,
}

impl Topology {
    /// The paper's deployment for a given node count: 2 places per node,
    /// 6 threads per place.
    pub fn paper(nodes: u16) -> Self {
        Topology {
            nodes,
            places_per_node: 2,
            threads_per_place: 6,
        }
    }

    /// A compact topology for unit tests: every place on its own node,
    /// one worker thread each.
    pub fn flat(places: u16) -> Self {
        Topology {
            nodes: places,
            places_per_node: 1,
            threads_per_place: 1,
        }
    }

    /// Total number of places.
    #[inline]
    pub fn num_places(&self) -> u16 {
        self.nodes * self.places_per_node
    }

    /// The node hosting `place`.
    #[inline]
    pub fn node_of(&self, place: PlaceId) -> u16 {
        place.0 / self.places_per_node
    }

    /// Whether two places share a node (and hence shared memory).
    #[inline]
    pub fn same_node(&self, a: PlaceId, b: PlaceId) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// All place ids in this topology.
    pub fn places(&self) -> impl Iterator<Item = PlaceId> {
        (0..self.num_places()).map(PlaceId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topology_matches_experiment_setup() {
        let t = Topology::paper(12);
        assert_eq!(t.num_places(), 24);
        assert_eq!(t.threads_per_place, 6);
        // 144 cores total at 12 nodes, as in Fig. 10's caption.
        assert_eq!(t.num_places() as u32 * t.threads_per_place as u32, 144);
    }

    #[test]
    fn node_grouping() {
        let t = Topology::paper(3);
        assert_eq!(t.node_of(PlaceId(0)), 0);
        assert_eq!(t.node_of(PlaceId(1)), 0);
        assert_eq!(t.node_of(PlaceId(2)), 1);
        assert!(t.same_node(PlaceId(0), PlaceId(1)));
        assert!(!t.same_node(PlaceId(1), PlaceId(2)));
    }

    #[test]
    fn places_iterates_all() {
        let t = Topology::flat(4);
        let ids: Vec<_> = t.places().collect();
        assert_eq!(ids, vec![PlaceId(0), PlaceId(1), PlaceId(2), PlaceId(3)]);
    }
}

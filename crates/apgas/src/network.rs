//! The interconnect cost model.
//!
//! Places live in one address space here, so "the network" is a pricing
//! function, not a wire. Both engines use it: the simulator to advance
//! virtual time per message, the threaded runtime to account a simulated
//! communication-time total alongside real wall time. Defaults model the
//! paper's testbed — Tianhe-1A nodes connected by InfiniBand QDR, two
//! places (processes) per node sharing memory.

use std::time::Duration;

use crate::place::{PlaceId, Topology};

/// Latency/bandwidth model of one link class.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkModel {
    /// One-way message latency.
    pub latency: Duration,
    /// Sustained bandwidth in bytes per second.
    pub bytes_per_sec: f64,
}

impl LinkModel {
    /// Cost of moving `bytes` over this link, including latency.
    #[inline]
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        self.latency + Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }
}

/// A two-tier interconnect: intra-node (shared memory between the two
/// places of one node) and inter-node (InfiniBand).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkModel {
    /// Link between places on the same node.
    pub intra_node: LinkModel,
    /// Link between places on different nodes.
    pub inter_node: LinkModel,
}

impl NetworkModel {
    /// Defaults modelled on the paper's testbed: Tianhe-1A nodes on
    /// InfiniBand QDR, but driven by the **X10 Socket runtime** (§VIII:
    /// "The X10 distribution was built to use Socket runtime"), i.e. a
    /// TCP stack rather than native verbs — ≈20 µs one-way latency and
    /// ≈1 GB/s effective across nodes; loopback sockets between the two
    /// places of one node at ≈6 µs and ≈4 GB/s.
    pub fn tianhe_like() -> Self {
        NetworkModel {
            intra_node: LinkModel {
                latency: Duration::from_micros(6),
                bytes_per_sec: 4.0e9,
            },
            inter_node: LinkModel {
                latency: Duration::from_micros(20),
                bytes_per_sec: 1.0e9,
            },
        }
    }

    /// A zero-cost network, for tests that want pure-compute behaviour.
    pub fn free() -> Self {
        let free = LinkModel {
            latency: Duration::ZERO,
            bytes_per_sec: f64::INFINITY,
        };
        NetworkModel {
            intra_node: free,
            inter_node: free,
        }
    }

    /// A uniform network (same cost regardless of node locality).
    pub fn uniform(latency: Duration, bytes_per_sec: f64) -> Self {
        let link = LinkModel {
            latency,
            bytes_per_sec,
        };
        NetworkModel {
            intra_node: link,
            inter_node: link,
        }
    }

    /// The link used between `src` and `dst` under `topo`.
    #[inline]
    pub fn link(&self, topo: &Topology, src: PlaceId, dst: PlaceId) -> LinkModel {
        if topo.same_node(src, dst) {
            self.intra_node
        } else {
            self.inter_node
        }
    }

    /// Cost of one `bytes`-sized message from `src` to `dst`.
    #[inline]
    pub fn transfer_time(
        &self,
        topo: &Topology,
        src: PlaceId,
        dst: PlaceId,
        bytes: usize,
    ) -> Duration {
        self.link(topo, src, dst).transfer_time(bytes)
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::tianhe_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_dominates_small_messages() {
        let net = NetworkModel::tianhe_like();
        let topo = Topology::paper(2);
        let t = net.transfer_time(&topo, PlaceId(0), PlaceId(2), 16);
        assert!(t >= Duration::from_micros(20));
        assert!(t < Duration::from_micros(21));
    }

    #[test]
    fn bandwidth_dominates_large_messages() {
        let net = NetworkModel::tianhe_like();
        let topo = Topology::paper(2);
        let t = net.transfer_time(&topo, PlaceId(0), PlaceId(2), 1_000_000_000);
        assert!(t >= Duration::from_millis(999));
    }

    #[test]
    fn intra_node_cheaper_than_inter_node() {
        let net = NetworkModel::tianhe_like();
        let topo = Topology::paper(2);
        let near = net.transfer_time(&topo, PlaceId(0), PlaceId(1), 1024);
        let far = net.transfer_time(&topo, PlaceId(0), PlaceId(2), 1024);
        assert!(near < far);
    }

    #[test]
    fn free_network_costs_nothing() {
        let net = NetworkModel::free();
        let topo = Topology::flat(3);
        assert_eq!(
            net.transfer_time(&topo, PlaceId(0), PlaceId(2), usize::MAX >> 8),
            Duration::ZERO
        );
    }

    #[test]
    fn uniform_ignores_locality() {
        let net = NetworkModel::uniform(Duration::from_micros(1), 1e9);
        let topo = Topology::paper(2);
        assert_eq!(
            net.transfer_time(&topo, PlaceId(0), PlaceId(1), 500),
            net.transfer_time(&topo, PlaceId(0), PlaceId(3), 500)
        );
    }
}

//! The assembled APGAS runtime: topology + pools + liveness + stats.

use std::sync::Arc;

use crate::activity::{ActivityPool, FinishScope};
use crate::fault::{DeadPlaceError, LivenessBoard};
use crate::network::NetworkModel;
use crate::place::{PlaceId, Topology};
use crate::stats::{StatsBoard, StatsSnapshot};

/// Construction parameters for a [`Runtime`].
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Cluster shape.
    pub topology: Topology,
    /// Interconnect cost model.
    pub network: NetworkModel,
}

impl RuntimeConfig {
    /// The paper's deployment on `nodes` nodes with a Tianhe-like network.
    pub fn paper(nodes: u16) -> Self {
        RuntimeConfig {
            topology: Topology::paper(nodes),
            network: NetworkModel::tianhe_like(),
        }
    }

    /// Small flat runtime for tests.
    pub fn flat(places: u16) -> Self {
        RuntimeConfig {
            topology: Topology::flat(places),
            network: NetworkModel::tianhe_like(),
        }
    }
}

/// A live APGAS runtime: one [`ActivityPool`] per place, shared liveness
/// and stats boards, and the network model used by its mailboxes.
///
/// The X10 program shape
///
/// ```text
/// finish { for (p in places) at (p) async work(p); }
/// ```
///
/// becomes
///
/// ```
/// use dpx10_apgas::{Runtime, RuntimeConfig, FinishScope, PlaceId};
///
/// let rt = Runtime::new(RuntimeConfig::flat(4));
/// let scope = FinishScope::new();
/// for p in rt.places() {
///     rt.spawn_at(p, &scope, move || { /* work(p) */ }).unwrap();
/// }
/// scope.wait();
/// ```
pub struct Runtime {
    config: RuntimeConfig,
    liveness: LivenessBoard,
    stats: StatsBoard,
    pools: Vec<Arc<ActivityPool>>,
}

impl Runtime {
    /// Boots the runtime: spawns every place's worker threads.
    pub fn new(config: RuntimeConfig) -> Self {
        let n = config.topology.num_places();
        assert!(n > 0, "a runtime needs at least one place");
        let liveness = LivenessBoard::new(n);
        let stats = StatsBoard::new(n);
        let pools = (0..n)
            .map(|p| {
                Arc::new(ActivityPool::new(
                    PlaceId(p),
                    config.topology.threads_per_place,
                    liveness.clone(),
                    stats.clone(),
                ))
            })
            .collect();
        Runtime {
            config,
            liveness,
            stats,
            pools,
        }
    }

    /// The runtime's topology.
    pub fn topology(&self) -> &Topology {
        &self.config.topology
    }

    /// The runtime's network model.
    pub fn network(&self) -> NetworkModel {
        self.config.network
    }

    /// Shared liveness board (clone to inject faults).
    pub fn liveness(&self) -> &LivenessBoard {
        &self.liveness
    }

    /// Shared stats board.
    pub fn stats(&self) -> &StatsBoard {
        &self.stats
    }

    /// Aggregated counters so far.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// All place ids.
    pub fn places(&self) -> impl Iterator<Item = PlaceId> {
        self.config.topology.places()
    }

    /// The pool of one place (X10's `at (p)` target).
    pub fn pool(&self, place: PlaceId) -> &Arc<ActivityPool> {
        &self.pools[place.index()]
    }

    /// `at (place) async f()` under `scope`.
    pub fn spawn_at<F>(
        &self,
        place: PlaceId,
        scope: &FinishScope,
        f: F,
    ) -> Result<(), DeadPlaceError>
    where
        F: FnOnce() + Send + 'static,
    {
        self.pools[place.index()].spawn(scope, f)
    }

    /// Runs `make_task(p)` on every live place and waits for all of them —
    /// the `finish { for places at async }` idiom.
    pub fn broadcast<F, G>(&self, make_task: G)
    where
        G: Fn(PlaceId) -> F,
        F: FnOnce() + Send + 'static,
    {
        let scope = FinishScope::new();
        for p in self.places() {
            if self.liveness.is_alive(p) {
                // A place dying between the check and the spawn is fine:
                // spawn fails, we skip it, exactly like a failed `at`.
                let _ = self.spawn_at(p, &scope, make_task(p));
            }
        }
        scope.wait();
    }

    /// Injects a failure of `place` (panics on place 0, like Resilient
    /// X10 aborting when Place 0 dies).
    pub fn kill_place(&self, place: PlaceId) {
        self.liveness.kill(place);
    }

    /// X10's `at (place) { expr }`: evaluates `f` on `place`'s worker
    /// pool and returns its value, blocking the caller.
    ///
    /// Fails with [`DeadPlaceError`] if the place is dead when invoked
    /// *or dies before replying* — the caller must not hang on a lost
    /// activity, mirroring how Resilient X10 surfaces the failure at the
    /// blocked `at`.
    pub fn invoke_at<R, F>(&self, place: PlaceId, f: F) -> Result<R, DeadPlaceError>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let (tx, rx) = dpx10_sync::channel::bounded::<R>(1);
        let scope = FinishScope::new();
        self.spawn_at(place, &scope, move || {
            let _ = tx.send(f());
        })?;
        // The job's FinishGuard drops the sender even if the place dies
        // before running it, so this receive always terminates.
        rx.recv().map_err(|_| DeadPlaceError { place })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn broadcast_reaches_every_place() {
        let rt = Runtime::new(RuntimeConfig::flat(4));
        let hits = Arc::new([
            AtomicU32::new(0),
            AtomicU32::new(0),
            AtomicU32::new(0),
            AtomicU32::new(0),
        ]);
        rt.broadcast(|p| {
            let hits = hits.clone();
            move || {
                hits[p.index()].fetch_add(1, Ordering::Relaxed);
            }
        });
        for h in hits.iter() {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn broadcast_skips_dead_places() {
        let rt = Runtime::new(RuntimeConfig::flat(3));
        rt.kill_place(PlaceId(1));
        let hits = Arc::new([AtomicU32::new(0), AtomicU32::new(0), AtomicU32::new(0)]);
        rt.broadcast(|p| {
            let hits = hits.clone();
            move || {
                hits[p.index()].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(hits[0].load(Ordering::Relaxed), 1);
        assert_eq!(hits[1].load(Ordering::Relaxed), 0);
        assert_eq!(hits[2].load(Ordering::Relaxed), 1);
    }

    #[test]
    fn paper_config_has_expected_shape() {
        let rt = Runtime::new(RuntimeConfig::paper(2));
        assert_eq!(rt.places().count(), 4);
        assert_eq!(rt.topology().threads_per_place, 6);
    }

    #[test]
    fn stats_count_tasks() {
        let rt = Runtime::new(RuntimeConfig::flat(2));
        rt.broadcast(|_| || {});
        assert_eq!(rt.stats_snapshot().tasks_run, 2);
    }
}

#[cfg(test)]
mod invoke_tests {
    use super::*;

    #[test]
    fn invoke_at_returns_value() {
        let rt = Runtime::new(RuntimeConfig::flat(3));
        let got = rt.invoke_at(PlaceId(2), || 6 * 7).unwrap();
        assert_eq!(got, 42);
    }

    #[test]
    fn invoke_at_runs_on_target_pool() {
        let rt = Runtime::new(RuntimeConfig::flat(2));
        let name = rt
            .invoke_at(PlaceId(1), || {
                std::thread::current().name().unwrap_or("").to_string()
            })
            .unwrap();
        assert!(name.starts_with("place1-"), "ran on {name}");
    }

    #[test]
    fn invoke_at_dead_place_errors() {
        let rt = Runtime::new(RuntimeConfig::flat(2));
        rt.kill_place(PlaceId(1));
        let err = rt.invoke_at(PlaceId(1), || 1).unwrap_err();
        assert_eq!(err.place, PlaceId(1));
    }

    #[test]
    fn invoke_at_place_dying_after_enqueue_does_not_hang() {
        use dpx10_sync::Mutex;
        let rt = Runtime::new(RuntimeConfig::flat(2));
        // Block place 1's single worker, enqueue the invoke, then kill
        // the place and release the worker: the queued job is dropped
        // and invoke_at must return Err rather than hang.
        let gate = std::sync::Arc::new(Mutex::new(()));
        let held = gate.lock();
        let scope = FinishScope::new();
        {
            let gate = gate.clone();
            rt.spawn_at(PlaceId(1), &scope, move || {
                let _g = gate.lock();
            })
            .unwrap();
        }
        let handle = {
            let rt_liveness = rt.liveness().clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(30));
                rt_liveness.kill(PlaceId(1));
            });
            // Queued behind the blocked worker.
            let result = {
                let r = std::thread::scope(|s| {
                    let rt_ref = &rt;
                    let h = s.spawn(move || rt_ref.invoke_at(PlaceId(1), || 7));
                    std::thread::sleep(std::time::Duration::from_millis(80));
                    drop(held); // release the worker after the kill fired
                    h.join().unwrap()
                });
                r
            };
            result
        };
        assert_eq!(handle.unwrap_err().place, PlaceId(1));
        scope.wait();
    }
}

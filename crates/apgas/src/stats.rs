//! Per-place runtime counters.
//!
//! Every engine-visible effect — activities run, messages sent, bytes
//! moved, cache hits — is counted here with relaxed atomics (hot-path
//! friendly) and read out as a consistent-enough [`StatsSnapshot`] once a
//! run has quiesced. The figure harness derives its communication columns
//! from these counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::place::PlaceId;

/// Counters for a single place.
#[derive(Debug, Default)]
pub struct PlaceStats {
    /// Activities (vertex computations or runtime tasks) executed here.
    pub tasks_run: AtomicU64,
    /// Messages sent from this place to another place.
    pub messages_sent: AtomicU64,
    /// Payload bytes of those messages.
    pub bytes_sent: AtomicU64,
    /// Simulated network time accumulated by this place's sends, in ns.
    pub net_time_ns: AtomicU64,
    /// Remote-value cache hits (paper §VI-C cache list).
    pub cache_hits: AtomicU64,
    /// Remote-value cache misses that forced a pull round-trip.
    pub cache_misses: AtomicU64,
    /// Coalesced batches flushed to the transport from this place.
    pub batches_sent: AtomicU64,
    /// Individual protocol messages carried inside those batches.
    pub batched_msgs: AtomicU64,
    /// Pull requests issued by this place (cache misses that actually
    /// went on the wire — the dedup hub folds repeat waiters).
    pub pulls_sent: AtomicU64,
    /// Pull requests the dedup hub folded into an already-outstanding
    /// pull instead of re-issuing.
    pub pulls_deduped: AtomicU64,
    /// Eager value pushes sent by this place (push comms mode).
    pub pushes_sent: AtomicU64,
    /// Parked gathers satisfied by a pinned push instead of a pull
    /// round-trip.
    pub pull_roundtrips_avoided: AtomicU64,
}

impl PlaceStats {
    /// Records one executed task.
    #[inline]
    pub fn on_task(&self) {
        self.tasks_run.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one outbound message of `bytes` costing `net_time`.
    #[inline]
    pub fn on_send(&self, bytes: usize, net_time: Duration) {
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
        self.net_time_ns
            .fetch_add(net_time.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Records a cache hit.
    #[inline]
    pub fn on_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a cache miss.
    #[inline]
    pub fn on_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one flushed coalescing batch carrying `entries` messages.
    #[inline]
    pub fn on_batch(&self, entries: usize) {
        self.batches_sent.fetch_add(1, Ordering::Relaxed);
        self.batched_msgs
            .fetch_add(entries as u64, Ordering::Relaxed);
    }

    /// Records one pull request put on the wire.
    #[inline]
    pub fn on_pull_sent(&self) {
        self.pulls_sent.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a pull folded into an outstanding one by the dedup hub.
    #[inline]
    pub fn on_pull_deduped(&self) {
        self.pulls_deduped.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one eager value push put on the wire.
    #[inline]
    pub fn on_push_sent(&self) {
        self.pushes_sent.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a parked gather satisfied by a pinned push.
    #[inline]
    pub fn on_pull_roundtrip_avoided(&self) {
        self.pull_roundtrips_avoided.fetch_add(1, Ordering::Relaxed);
    }
}

/// Shared board of per-place counters.
#[derive(Clone)]
pub struct StatsBoard {
    places: Arc<[PlaceStats]>,
}

impl StatsBoard {
    /// Creates a board for `places` places.
    pub fn new(places: u16) -> Self {
        let v: Vec<PlaceStats> = (0..places).map(|_| PlaceStats::default()).collect();
        StatsBoard { places: v.into() }
    }

    /// The counters of one place.
    #[inline]
    pub fn place(&self, place: PlaceId) -> &PlaceStats {
        &self.places[place.index()]
    }

    /// Aggregates all places into a snapshot.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut s = StatsSnapshot::default();
        for p in self.places.iter() {
            s.tasks_run += p.tasks_run.load(Ordering::Relaxed);
            s.messages_sent += p.messages_sent.load(Ordering::Relaxed);
            s.bytes_sent += p.bytes_sent.load(Ordering::Relaxed);
            s.net_time += Duration::from_nanos(p.net_time_ns.load(Ordering::Relaxed));
            s.cache_hits += p.cache_hits.load(Ordering::Relaxed);
            s.cache_misses += p.cache_misses.load(Ordering::Relaxed);
            s.batches_sent += p.batches_sent.load(Ordering::Relaxed);
            s.batched_msgs += p.batched_msgs.load(Ordering::Relaxed);
            s.pulls_sent += p.pulls_sent.load(Ordering::Relaxed);
            s.pulls_deduped += p.pulls_deduped.load(Ordering::Relaxed);
            s.pushes_sent += p.pushes_sent.load(Ordering::Relaxed);
            s.pull_roundtrips_avoided += p.pull_roundtrips_avoided.load(Ordering::Relaxed);
        }
        s
    }
}

/// Aggregated counters across all places.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Total activities executed.
    pub tasks_run: u64,
    /// Total inter-place messages.
    pub messages_sent: u64,
    /// Total payload bytes moved between places.
    pub bytes_sent: u64,
    /// Total simulated network time (sum over messages; not wall time).
    pub net_time: Duration,
    /// Remote-value cache hits.
    pub cache_hits: u64,
    /// Remote-value cache misses.
    pub cache_misses: u64,
    /// Coalesced batches flushed to the transport.
    pub batches_sent: u64,
    /// Individual protocol messages carried inside those batches.
    pub batched_msgs: u64,
    /// Pull requests issued (the request leg of pull round-trips).
    pub pulls_sent: u64,
    /// Pulls folded into an outstanding request by the dedup hub.
    pub pulls_deduped: u64,
    /// Eager value pushes sent (push comms mode).
    pub pushes_sent: u64,
    /// Parked gathers satisfied by a pinned push instead of a pull
    /// round-trip.
    pub pull_roundtrips_avoided: u64,
}

impl StatsSnapshot {
    /// Cache hit rate in `[0, 1]`; `None` when the cache saw no traffic.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_aggregate() {
        let board = StatsBoard::new(2);
        board.place(PlaceId(0)).on_task();
        board.place(PlaceId(1)).on_task();
        board
            .place(PlaceId(1))
            .on_send(128, Duration::from_micros(5));
        let snap = board.snapshot();
        assert_eq!(snap.tasks_run, 2);
        assert_eq!(snap.messages_sent, 1);
        assert_eq!(snap.bytes_sent, 128);
        assert_eq!(snap.net_time, Duration::from_micros(5));
    }

    #[test]
    fn hit_rate() {
        let board = StatsBoard::new(1);
        assert_eq!(board.snapshot().cache_hit_rate(), None);
        board.place(PlaceId(0)).on_cache_hit();
        board.place(PlaceId(0)).on_cache_hit();
        board.place(PlaceId(0)).on_cache_miss();
        let rate = board.snapshot().cache_hit_rate().unwrap();
        assert!((rate - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn batch_counters_aggregate() {
        let board = StatsBoard::new(2);
        board.place(PlaceId(0)).on_batch(3);
        board.place(PlaceId(1)).on_batch(5);
        let snap = board.snapshot();
        assert_eq!(snap.batches_sent, 2);
        assert_eq!(snap.batched_msgs, 8);
    }

    #[test]
    fn clones_share_counters() {
        let a = StatsBoard::new(1);
        let b = a.clone();
        a.place(PlaceId(0)).on_task();
        assert_eq!(b.snapshot().tasks_run, 1);
    }
}

//! A minimal wire codec.
//!
//! DPX10's claim that it "does not depend on any third libraries" (§VI) is
//! kept here: instead of pulling a serialization framework, values that
//! cross places implement [`Codec`], a little-endian binary format. The
//! engines mostly need [`Codec::wire_size`] — the byte count a transfer
//! would occupy — to drive the [`crate::NetworkModel`]; `encode`/`decode`
//! exist so the format is real (round-trip tested) rather than a guess.

/// A value that can cross a place boundary.
///
/// Implementations must guarantee `decode(encode(x)) == x` and that
/// `encode` appends exactly [`wire_size`](Codec::wire_size) bytes.
pub trait Codec: Sized {
    /// Appends the wire representation to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes one value from the front of `src`, advancing it.
    /// Returns `None` on malformed or truncated input.
    fn decode(src: &mut &[u8]) -> Option<Self>;

    /// Number of bytes `encode` appends.
    fn wire_size(&self) -> usize;
}

macro_rules! impl_codec_for_int {
    ($($ty:ty),*) => {$(
        impl Codec for $ty {
            #[inline]
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }

            #[inline]
            fn decode(src: &mut &[u8]) -> Option<Self> {
                const N: usize = std::mem::size_of::<$ty>();
                let (head, rest) = src.split_first_chunk::<N>()?;
                *src = rest;
                Some(<$ty>::from_le_bytes(*head))
            }

            #[inline]
            fn wire_size(&self) -> usize {
                std::mem::size_of::<$ty>()
            }
        }
    )*};
}

impl_codec_for_int!(u8, u16, u32, u64, i8, i16, i32, i64, usize, isize);

impl Codec for f32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.to_bits().encode(buf);
    }

    fn decode(src: &mut &[u8]) -> Option<Self> {
        u32::decode(src).map(f32::from_bits)
    }

    fn wire_size(&self) -> usize {
        4
    }
}

impl Codec for f64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.to_bits().encode(buf);
    }

    fn decode(src: &mut &[u8]) -> Option<Self> {
        u64::decode(src).map(f64::from_bits)
    }

    fn wire_size(&self) -> usize {
        8
    }
}

impl Codec for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self as u8);
    }

    fn decode(src: &mut &[u8]) -> Option<Self> {
        match u8::decode(src)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    fn wire_size(&self) -> usize {
        1
    }
}

impl Codec for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}

    fn decode(_src: &mut &[u8]) -> Option<Self> {
        Some(())
    }

    fn wire_size(&self) -> usize {
        0
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }

    fn decode(src: &mut &[u8]) -> Option<Self> {
        Some((A::decode(src)?, B::decode(src)?))
    }

    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size()
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }

    fn decode(src: &mut &[u8]) -> Option<Self> {
        Some((A::decode(src)?, B::decode(src)?, C::decode(src)?))
    }

    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size() + self.2.wire_size()
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }

    fn decode(src: &mut &[u8]) -> Option<Self> {
        match u8::decode(src)? {
            0 => Some(None),
            1 => Some(Some(T::decode(src)?)),
            _ => None,
        }
    }

    fn wire_size(&self) -> usize {
        1 + self.as_ref().map_or(0, Codec::wire_size)
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }

    fn decode(src: &mut &[u8]) -> Option<Self> {
        let len = u64::decode(src)? as usize;
        // Guard against hostile lengths: each element needs >= 1 byte
        // except zero-sized payloads, bounded by remaining input.
        if len > src.len() && std::mem::size_of::<T>() > 0 {
            return None;
        }
        let mut out = Vec::with_capacity(len.min(src.len().max(1)));
        for _ in 0..len {
            out.push(T::decode(src)?);
        }
        Some(out)
    }

    fn wire_size(&self) -> usize {
        8 + self.iter().map(Codec::wire_size).sum::<usize>()
    }
}

impl Codec for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        buf.extend_from_slice(self.as_bytes());
    }

    fn decode(src: &mut &[u8]) -> Option<Self> {
        let len = u64::decode(src)? as usize;
        if len > src.len() {
            return None;
        }
        let (head, rest) = src.split_at(len);
        *src = rest;
        String::from_utf8(head.to_vec()).ok()
    }

    fn wire_size(&self) -> usize {
        8 + self.len()
    }
}

/// Encodes a value into a fresh buffer (test / one-shot helper).
pub fn encode_to_vec<T: Codec>(value: &T) -> Vec<u8> {
    let mut buf = Vec::with_capacity(value.wire_size());
    value.encode(&mut buf);
    buf
}

/// Decodes a value that must consume the entire buffer.
pub fn decode_exact<T: Codec>(mut src: &[u8]) -> Option<T> {
    let v = T::decode(&mut src)?;
    src.is_empty().then_some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let buf = encode_to_vec(&v);
        assert_eq!(buf.len(), v.wire_size(), "wire_size contract for {v:?}");
        assert_eq!(decode_exact::<T>(&buf), Some(v));
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u16::MAX);
        round_trip(-5i32);
        round_trip(u64::MAX);
        round_trip(1234usize);
        round_trip(3.5f32);
        round_trip(-0.0f64);
        round_trip(true);
        round_trip(());
    }

    #[test]
    fn nan_round_trips_bitwise() {
        let nan = f64::from_bits(0x7ff8_dead_beef_0001);
        let buf = encode_to_vec(&nan);
        let back: f64 = decode_exact(&buf).unwrap();
        assert_eq!(back.to_bits(), nan.to_bits());
    }

    #[test]
    fn compounds_round_trip() {
        round_trip((42u32, -1i64));
        round_trip(Some(7u16));
        round_trip(None::<u16>);
        round_trip(vec![1u32, 2, 3]);
        round_trip(Vec::<u8>::new());
        round_trip("héllo".to_string());
        round_trip(vec![(1u8, 2u8), (3, 4)]);
    }

    #[test]
    fn truncated_input_rejected() {
        let buf = encode_to_vec(&12345u64);
        assert_eq!(decode_exact::<u64>(&buf[..4]), None);
    }

    #[test]
    fn trailing_bytes_rejected_by_decode_exact() {
        let mut buf = encode_to_vec(&7u32);
        buf.push(0);
        assert_eq!(decode_exact::<u32>(&buf), None);
    }

    #[test]
    fn invalid_bool_rejected() {
        assert_eq!(decode_exact::<bool>(&[2]), None);
    }

    #[test]
    fn hostile_vec_length_rejected() {
        // Claims 2^60 elements with a 1-byte body.
        let mut buf = encode_to_vec(&(1u64 << 60));
        buf.push(0);
        let mut src = buf.as_slice();
        assert_eq!(Vec::<u32>::decode(&mut src), None);
    }

    #[test]
    fn option_wire_size_counts_tag() {
        assert_eq!(Some(1u32).wire_size(), 5);
        assert_eq!(None::<u32>.wire_size(), 1);
    }
}

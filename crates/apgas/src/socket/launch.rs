//! Spawning place processes on the local machine.
//!
//! `dpx10 run --backend sockets` turns one invocation into `N` place
//! processes: the launcher binds a bootstrap listener, re-executes its
//! own binary `N - 1` times with `DPX10_PLACE`/`DPX10_PLACES`/
//! `DPX10_COORD` in the environment and the *same* argument vector, then
//! becomes place 0 itself. A child sees `DPX10_PLACE` set, rebuilds the
//! identical workload from the identical arguments, and joins the mesh
//! as a worker.

use std::io;
use std::net::TcpListener;
use std::process::{Child, Command, ExitStatus, Stdio};

use super::SocketConfig;

/// The spawned worker processes of a socket run.
///
/// Dropping the handle does **not** kill the children — after a clean
/// run they exit by themselves; call [`kill_all`](Self::kill_all) for
/// abnormal teardown.
#[derive(Debug)]
pub struct PlaceChildren {
    children: Vec<Child>,
}

impl PlaceChildren {
    /// Pids of the children, indexed by `place - 1`.
    pub fn pids(&self) -> Vec<u32> {
        self.children.iter().map(Child::id).collect()
    }

    /// Waits for every child and returns the exit statuses.
    pub fn wait_all(&mut self) -> io::Result<Vec<ExitStatus>> {
        self.children.iter_mut().map(Child::wait).collect()
    }

    /// Kills any child still running (used when the coordinator errors
    /// out and the run is being abandoned).
    pub fn kill_all(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Binds the bootstrap listener and spawns `places - 1` worker processes
/// re-running the current executable with `args`.
///
/// Each child's pid is announced on stderr as
/// `dpx10: place <p> pid <pid>` — fault-injection harnesses parse these
/// lines to aim their `SIGKILL`.
///
/// `DPX10_MAX_PLACES` (when greater than `places`) raises the mesh
/// capacity: the coordinator keeps its listener open after the
/// handshake and announces its address on stderr so `dpx10 join` can
/// dial into the running mesh. Children inherit the variable and size
/// their peer tables to match.
pub fn launch_places(places: u16, args: &[String]) -> io::Result<(SocketConfig, PlaceChildren)> {
    if places == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "cannot launch zero places",
        ));
    }
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let coord_addr = listener.local_addr()?.to_string();
    let max_places = std::env::var("DPX10_MAX_PLACES")
        .ok()
        .and_then(|v| v.parse::<u16>().ok())
        .unwrap_or(places)
        .max(places);
    if max_places > places {
        eprintln!("dpx10: coordinator {coord_addr} accepting joins (capacity {max_places})");
    }
    let exe = std::env::current_exe()?;
    let mut children = Vec::with_capacity(places.saturating_sub(1) as usize);
    for place in 1..places {
        match Command::new(&exe)
            .args(args)
            .env("DPX10_PLACE", place.to_string())
            .env("DPX10_PLACES", places.to_string())
            .env("DPX10_COORD", &coord_addr)
            .stdin(Stdio::null())
            .spawn()
        {
            Ok(child) => {
                eprintln!("dpx10: place {place} pid {}", child.id());
                children.push(child);
            }
            Err(e) => {
                // Partial launch: reap what we started, then fail.
                let mut started = PlaceChildren { children };
                started.kill_all();
                return Err(e);
            }
        }
    }
    let mut cfg = SocketConfig::coordinator(listener, places);
    cfg.max_places = max_places;
    Ok((cfg, PlaceChildren { children }))
}

//! The multi-process socket transport: one OS process per place,
//! connected by a full TCP mesh on localhost (or any reachable
//! addresses).
//!
//! Where the in-process [`LocalTransport`](crate::transport::LocalTransport)
//! *models* a network, this backend has a real one: every message is
//! encoded with [`Codec`], wrapped in a length-prefixed [`frame`], and
//! written to a socket. The [`StatsBoard`] consequently records the bytes
//! actually framed, with zero simulated network time.
//!
//! # Mesh formation
//!
//! Place 0 is the *coordinator* of the handshake (and, in DPX10, of the
//! whole run — Resilient X10's immortal place). Startup:
//!
//! 1. every worker binds its own listener, dials the coordinator and
//!    sends `Hello { place, places, addr }`;
//! 2. the coordinator, having heard all `places - 1` hellos, replies to
//!    each with a `PeerMap` of every listen address;
//! 3. each worker dials every *lower-numbered* worker (and accepts a
//!    connection from every higher-numbered one), sends `Ready` to the
//!    coordinator, and waits for `Go`.
//!
//! The coordinator's address comes either from the in-process launcher
//! ([`launch::launch_places`]) via `DPX10_COORD`, or from a static
//! `DPX10_PEERS` list (in which case each place binds its listed
//! address).
//!
//! # Steady state
//!
//! Each connection gets a *writer thread* (draining a bounded outbox,
//! emitting a `Heartbeat` when idle) and a *reader thread* (demuxing
//! `Data` frames into the node's inbound queue). A read that sees EOF, a
//! protocol violation, or silence longer than the peer timeout marks the
//! peer dead on the shared [`LivenessBoard`] — from there the engine's
//! ordinary [`DeadPlaceError`] machinery takes over, exactly as with an
//! injected fault.

pub mod frame;
pub mod launch;

use std::io::{self, Write};
use std::marker::PhantomData;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dpx10_obs::{EventKind, Recorder, RUNTIME_WORKER};
use dpx10_sync::channel::{self, Receiver, RecvTimeoutError, Sender};
use dpx10_sync::Mutex;

use crate::chaos::ChaosRng;
use crate::codec::{decode_exact, Codec};
use crate::fault::{DeadPlaceError, LivenessBoard};
use crate::mailbox::Envelope;
use crate::membership::{MemberState, RosterBoard};
use crate::place::PlaceId;
use crate::stats::StatsBoard;
use crate::transport::Transport;
use frame::{Frame, FrameError};

/// Frames a writer queues before senders block (bounds memory if a peer
/// reads slowly).
const OUTBOX_CAP: usize = 4096;

/// How this process joins the mesh.
#[derive(Debug)]
pub enum ConnectMode {
    /// Place 0 with a pre-bound listener the workers will dial.
    Coordinator(TcpListener),
    /// A worker place: dial `coordinator`, optionally binding a fixed
    /// listen address (static `DPX10_PEERS` deployments).
    Worker {
        /// The coordinator's address.
        coordinator: String,
        /// Fixed listen address, or `None` for an ephemeral port.
        bind: Option<String>,
    },
}

/// Seeded frame-level perturbation of the socket mesh, applied by the
/// writer threads (`DPX10_CHAOS`, see [`SocketConfig::from_env`]).
///
/// Delay stalls a frame (and, FIFO link, everything queued behind it) a
/// few milliseconds before writing. `dup_prob`/`drop_prob` act on *whole
/// frames* — including the engines' control-plane messages, which are
/// not idempotent — so they stay at zero in differential runs and exist
/// for targeted robustness tests. `flap` suppresses idle heartbeats for
/// a window starting [`SocketChaos::FLAP_DELAY`] after connect: shorter
/// than the peer timeout and the link rides it out, longer and the peer
/// is declared dead — either way the detection path runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SocketChaos {
    /// Root seed; each link derives its own decision stream from it.
    pub seed: u64,
    /// Probability a frame's write is delayed.
    pub delay_prob: f64,
    /// Maximum per-frame write delay.
    pub max_delay: Duration,
    /// Probability a frame is written twice.
    pub dup_prob: f64,
    /// Probability a frame is not written at all.
    pub drop_prob: f64,
    /// Heartbeat-suppression window length, if flapping.
    pub flap: Option<Duration>,
}

impl SocketChaos {
    /// How long after connect the heartbeat flap window opens.
    pub const FLAP_DELAY: Duration = Duration::from_millis(500);

    /// Delay-only chaos — the perturbation that is always safe on the
    /// engines' control plane.
    pub fn delay_only(seed: u64, delay_prob: f64, max_delay: Duration) -> Self {
        SocketChaos {
            seed,
            delay_prob,
            max_delay,
            dup_prob: 0.0,
            drop_prob: 0.0,
            flap: None,
        }
    }
}

/// Everything needed to bring one place onto the socket mesh.
#[derive(Debug)]
pub struct SocketConfig {
    /// This process's place.
    pub place: PlaceId,
    /// Total places in the computation.
    pub places: u16,
    /// Mesh capacity: the maximum place count this mesh may ever grow
    /// to (`DPX10_MAX_PLACES`, default `places`). Every per-peer table
    /// is sized to this, and a listener is kept open after the
    /// handshake — only when `max_places > places` — so joiners can
    /// dial into the running mesh.
    pub max_places: u16,
    /// Handshake role.
    pub mode: ConnectMode,
    /// Idle-writer keep-alive interval (`DPX10_HB_MS`, default 250 ms).
    pub heartbeat: Duration,
    /// Silence after which a peer is declared dead (`DPX10_TIMEOUT_MS`,
    /// default 5 s).
    pub peer_timeout: Duration,
    /// Budget for the whole handshake (`DPX10_CONNECT_MS`, default 30 s).
    pub connect_timeout: Duration,
    /// Frame-level chaos injection, off by default.
    pub chaos: Option<SocketChaos>,
    /// Flight recorder for frame-level events ([`EventKind::FrameSend`]
    /// / [`EventKind::FrameRecv`]); disabled by default.
    pub recorder: Recorder,
}

fn env_ms(name: &str, default: u64) -> Duration {
    let ms = std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default);
    Duration::from_millis(ms.max(1))
}

fn bad_input<T>(msg: impl Into<String>) -> io::Result<T> {
    Err(io::Error::new(io::ErrorKind::InvalidInput, msg.into()))
}

impl SocketConfig {
    /// Coordinator config over an already-bound listener.
    pub fn coordinator(listener: TcpListener, places: u16) -> Self {
        SocketConfig {
            place: PlaceId::ZERO,
            places,
            max_places: places,
            mode: ConnectMode::Coordinator(listener),
            heartbeat: env_ms("DPX10_HB_MS", 250),
            peer_timeout: env_ms("DPX10_TIMEOUT_MS", 5_000),
            connect_timeout: env_ms("DPX10_CONNECT_MS", 30_000),
            chaos: chaos_from_env(),
            recorder: Recorder::disabled(),
        }
    }

    /// Worker config dialing `coordinator` from an ephemeral port.
    pub fn worker(place: PlaceId, places: u16, coordinator: String) -> Self {
        SocketConfig {
            place,
            places,
            max_places: places,
            mode: ConnectMode::Worker {
                coordinator,
                bind: None,
            },
            heartbeat: env_ms("DPX10_HB_MS", 250),
            peer_timeout: env_ms("DPX10_TIMEOUT_MS", 5_000),
            connect_timeout: env_ms("DPX10_CONNECT_MS", 30_000),
            chaos: chaos_from_env(),
            recorder: Recorder::disabled(),
        }
    }

    /// Reads the launcher environment (`DPX10_PLACE`, `DPX10_PLACES`,
    /// `DPX10_COORD` / `DPX10_PEERS`).
    ///
    /// Returns `Ok(None)` when `DPX10_PLACE` is unset — the process is
    /// not a spawned place and should act as launcher/coordinator.
    pub fn from_env() -> io::Result<Option<SocketConfig>> {
        let Ok(place_raw) = std::env::var("DPX10_PLACE") else {
            return Ok(None);
        };
        let Ok(place) = place_raw.parse::<u16>() else {
            return bad_input(format!("bad DPX10_PLACE {place_raw:?}"));
        };
        let places: u16 = match std::env::var("DPX10_PLACES") {
            Ok(v) => match v.parse() {
                Ok(n) if n > place => n,
                _ => return bad_input(format!("bad DPX10_PLACES {v:?} for place {place}")),
            },
            Err(_) => return bad_input("DPX10_PLACE set but DPX10_PLACES missing"),
        };
        let mode = if let Ok(peers) = std::env::var("DPX10_PEERS") {
            let addrs: Vec<String> = peers.split(',').map(str::trim).map(String::from).collect();
            if addrs.len() != places as usize {
                return bad_input(format!(
                    "DPX10_PEERS lists {} addresses for {places} places",
                    addrs.len()
                ));
            }
            if place == 0 {
                ConnectMode::Coordinator(TcpListener::bind(addrs[0].as_str())?)
            } else {
                ConnectMode::Worker {
                    coordinator: addrs[0].clone(),
                    bind: Some(addrs[place as usize].clone()),
                }
            }
        } else {
            let Ok(coordinator) = std::env::var("DPX10_COORD") else {
                return bad_input("DPX10_PLACE set but neither DPX10_COORD nor DPX10_PEERS is");
            };
            if place == 0 {
                return bad_input("place 0 needs DPX10_PEERS, not DPX10_COORD");
            }
            ConnectMode::Worker {
                coordinator,
                bind: None,
            }
        };
        let max_places = std::env::var("DPX10_MAX_PLACES")
            .ok()
            .and_then(|v| v.parse::<u16>().ok())
            .unwrap_or(places)
            .max(places);
        Ok(Some(SocketConfig {
            place: PlaceId(place),
            places,
            max_places,
            mode,
            heartbeat: env_ms("DPX10_HB_MS", 250),
            peer_timeout: env_ms("DPX10_TIMEOUT_MS", 5_000),
            connect_timeout: env_ms("DPX10_CONNECT_MS", 30_000),
            chaos: chaos_from_env(),
            recorder: Recorder::disabled(),
        }))
    }
}

/// Parses `DPX10_CHAOS`, a comma-separated `key=value` list:
/// `seed=7,delay=0.1,delay_ms=3,dup=0,drop=0,flap_ms=400`. Every key is
/// optional; an unset or malformed variable means no chaos. Exposed so
/// the launcher environment reaches spawned places unchanged.
pub fn chaos_from_env() -> Option<SocketChaos> {
    parse_chaos(&std::env::var("DPX10_CHAOS").ok()?)
}

/// The parser behind [`chaos_from_env`].
pub fn parse_chaos(raw: &str) -> Option<SocketChaos> {
    let mut chaos = SocketChaos {
        seed: 0,
        delay_prob: 0.0,
        max_delay: Duration::from_millis(2),
        dup_prob: 0.0,
        drop_prob: 0.0,
        flap: None,
    };
    for part in raw.split(',') {
        let (key, value) = part.split_once('=')?;
        match (key.trim(), value.trim()) {
            ("seed", v) => chaos.seed = v.parse().ok()?,
            ("delay", v) => chaos.delay_prob = v.parse().ok()?,
            ("delay_ms", v) => chaos.max_delay = Duration::from_millis(v.parse().ok()?),
            ("dup", v) => chaos.dup_prob = v.parse().ok()?,
            ("drop", v) => chaos.drop_prob = v.parse().ok()?,
            ("flap_ms", v) => chaos.flap = Some(Duration::from_millis(v.parse().ok()?)),
            _ => return None,
        }
    }
    Some(chaos)
}

/// State shared by every per-link thread, the acceptor thread, and the
/// node facade: the per-peer tables a link registers itself into, plus
/// the knobs readers and writers run with.
///
/// All tables are sized to `capacity` (not the founding place count) so
/// [`register_link`] can attach a joiner's link to a *running* mesh
/// without resizing anything — the heartbeat/writer table is driven by
/// link registration, not by a `0..places` loop at startup.
struct LinkFabric {
    me: PlaceId,
    capacity: u16,
    liveness: LivenessBoard,
    roster: RosterBoard,
    outboxes: Mutex<Vec<Option<Sender<Vec<u8>>>>>,
    /// One extra clone of each peer stream, kept so [`SocketNode::crash`]
    /// can tear the sockets down underneath the reader/writer threads.
    streams: Mutex<Vec<Option<TcpStream>>>,
    writer_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    inbound_tx: Sender<(PlaceId, Vec<u8>)>,
    shutting_down: AtomicBool,
    crashed: AtomicBool,
    heartbeat: Duration,
    peer_timeout: Duration,
    connect_timeout: Duration,
    chaos: Option<SocketChaos>,
    recorder: Recorder,
}

/// Sets up one live peer link on the fabric: stores the stream, creates
/// the bounded outbox, and spawns the writer/reader thread pair. Safe to
/// call at any time — this is how both the startup handshake and a
/// mid-run join attach links.
fn register_link(fabric: &Arc<LinkFabric>, peer: PlaceId, stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(fabric.peer_timeout))?;
    stream.set_nodelay(true)?;
    let wstream = stream.try_clone()?;
    fabric.streams.lock()[peer.index()] = Some(stream.try_clone()?);
    let (tx, rx) = channel::bounded(OUTBOX_CAP);
    let chaos = fabric.chaos.map(|ch| LinkChaos::new(ch, fabric.me, peer));
    let writer = {
        let fab = fabric.clone();
        std::thread::Builder::new()
            .name(format!("sock-w{}-{}", fabric.me.0, peer.0))
            .spawn(move || writer_loop(wstream, peer, rx, fab, chaos))?
    };
    // Readers are detached: on shutdown they exit on the peer's `Bye` or
    // its closed socket, and must not delay process teardown by a full
    // peer timeout.
    {
        let fab = fabric.clone();
        std::thread::Builder::new()
            .name(format!("sock-r{}-{}", fabric.me.0, peer.0))
            .spawn(move || reader_loop(stream, peer, fab))?;
    }
    fabric.writer_handles.lock().push(writer);
    // Publish the outbox last: once `send_bytes` can see it, the link's
    // threads are already running.
    fabric.outboxes.lock()[peer.index()] = Some(tx);
    Ok(())
}

/// One place's end of the byte-level socket mesh.
///
/// Typed use goes through [`SocketTransport`]; this level moves opaque
/// payload bytes and owns the liveness/stats/roster boards of the
/// process.
pub struct SocketNode {
    fabric: Arc<LinkFabric>,
    places: u16,
    stats: StatsBoard,
    inbound_rx: Receiver<(PlaceId, Vec<u8>)>,
}

impl SocketNode {
    /// Performs the handshake of `cfg` and starts the per-peer reader and
    /// writer threads. Blocks until the whole mesh is up (`Go` received /
    /// sent) or the connect timeout expires.
    ///
    /// When `cfg.max_places > cfg.places` the node keeps its listener
    /// open after the handshake and spawns an *acceptor* thread, so the
    /// mesh can grow: joiners dial the coordinator with a `JoinReq` and
    /// every existing member with a `JoinHello` (see [`SocketNode::join`]).
    pub fn connect(cfg: SocketConfig) -> io::Result<SocketNode> {
        let places = cfg.places;
        let capacity = cfg.max_places.max(places);
        if cfg.place.index() >= places as usize {
            return bad_input(format!("place {} out of range 0..{places}", cfg.place.0));
        }
        let me = cfg.place;
        let (links, listener, mut addrs) = match cfg.mode {
            ConnectMode::Coordinator(listener) => {
                let (links, mut addrs) =
                    handshake_coordinator(&listener, places, cfg.connect_timeout)?;
                addrs[0] = listener.local_addr()?.to_string();
                (links, listener, addrs)
            }
            ConnectMode::Worker { coordinator, bind } => {
                let (links, listener, mut addrs) = handshake_worker(
                    me,
                    places,
                    &coordinator,
                    bind.as_deref(),
                    cfg.connect_timeout,
                )?;
                addrs[0] = coordinator;
                (links, listener, addrs)
            }
        };
        addrs.resize(capacity as usize, String::new());

        let roster = RosterBoard::new(places, capacity);
        for (i, a) in addrs.iter().enumerate() {
            if !a.is_empty() {
                roster.set_addr(PlaceId(i as u16), a.clone());
            }
        }
        let (inbound_tx, inbound_rx) = channel::unbounded();
        let fabric = Arc::new(LinkFabric {
            me,
            capacity,
            liveness: LivenessBoard::new(capacity),
            roster,
            outboxes: Mutex::new((0..capacity).map(|_| None).collect()),
            streams: Mutex::new((0..capacity).map(|_| None).collect()),
            writer_handles: Mutex::new(Vec::new()),
            inbound_tx,
            shutting_down: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
            heartbeat: cfg.heartbeat,
            peer_timeout: cfg.peer_timeout,
            connect_timeout: cfg.connect_timeout,
            chaos: cfg.chaos,
            recorder: cfg.recorder,
        });
        for (peer_idx, link) in links.into_iter().enumerate() {
            let Some(stream) = link else { continue };
            register_link(&fabric, PlaceId(peer_idx as u16), stream)?;
        }
        if capacity > places {
            let fab = fabric.clone();
            std::thread::Builder::new()
                .name(format!("sock-a{}", me.0))
                .spawn(move || acceptor_loop(listener, fab))
                .expect("spawn acceptor");
        }
        Ok(SocketNode {
            fabric,
            places,
            stats: StatsBoard::new(capacity),
            inbound_rx,
        })
    }

    /// Joins a *running* elastic mesh post-launch: dials the coordinator
    /// with a `JoinReq`, receives the assigned place id, mesh capacity
    /// and member address map in the `JoinAccept`, dials every member
    /// with a `JoinHello`, and starts its own acceptor so later joiners
    /// can reach it. Fails with an error containing the coordinator's
    /// reason if the mesh is at capacity.
    pub fn join(cfg: JoinConfig) -> io::Result<SocketNode> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let my_addr = listener.local_addr()?.to_string();
        let mut coord =
            TcpStream::connect_timeout(&resolve(&cfg.coordinator)?, cfg.connect_timeout)?;
        prepare(&coord, cfg.connect_timeout)?;
        frame::write_frame(
            &mut coord,
            &Frame::JoinReq {
                addr: my_addr.clone(),
            },
        )?;
        let (place, capacity, addrs) = match read_hs(&mut coord)? {
            Frame::JoinAccept {
                place,
                capacity,
                addrs,
            } => (place, capacity, addrs),
            Frame::JoinReject { reason } => {
                return Err(io::Error::other(format!("join rejected: {reason}")))
            }
            other => return hs_err(format!("expected join-accept, got {other:?}")),
        };
        if place >= capacity || addrs.len() != capacity as usize {
            return hs_err(format!(
                "malformed join-accept: place {place} of {capacity} with {} addrs",
                addrs.len()
            ));
        }
        let me = PlaceId(place);
        let roster = RosterBoard::new(0, capacity);
        for (i, a) in addrs.iter().enumerate() {
            if a.is_empty() {
                continue;
            }
            let p = PlaceId(i as u16);
            let _ = roster.observe_join(p);
            roster.set_addr(p, a.clone());
        }
        let _ = roster.observe_join(me);
        roster.set_addr(me, my_addr);
        let (inbound_tx, inbound_rx) = channel::unbounded();
        let fabric = Arc::new(LinkFabric {
            me,
            capacity,
            liveness: LivenessBoard::new(capacity),
            roster,
            outboxes: Mutex::new((0..capacity).map(|_| None).collect()),
            streams: Mutex::new((0..capacity).map(|_| None).collect()),
            writer_handles: Mutex::new(Vec::new()),
            inbound_tx,
            shutting_down: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
            heartbeat: cfg.heartbeat,
            peer_timeout: cfg.peer_timeout,
            connect_timeout: cfg.connect_timeout,
            chaos: cfg.chaos,
            recorder: cfg.recorder,
        });
        register_link(&fabric, PlaceId(0), coord)?;
        for (i, a) in addrs.iter().enumerate() {
            let p = PlaceId(i as u16);
            if p == me || i == 0 || a.is_empty() {
                continue;
            }
            let mut stream = TcpStream::connect_timeout(&resolve(a)?, cfg.connect_timeout)?;
            prepare(&stream, cfg.connect_timeout)?;
            frame::write_frame(&mut stream, &Frame::JoinHello { place: me.0 })?;
            register_link(&fabric, p, stream)?;
        }
        {
            let fab = fabric.clone();
            std::thread::Builder::new()
                .name(format!("sock-a{}", me.0))
                .spawn(move || acceptor_loop(listener, fab))
                .expect("spawn acceptor");
        }
        Ok(SocketNode {
            fabric,
            places: capacity,
            stats: StatsBoard::new(capacity),
            inbound_rx,
        })
    }

    /// This process's place.
    pub fn me(&self) -> PlaceId {
        self.fabric.me
    }

    /// Founding place count of the mesh (for a node that joined
    /// post-launch, the mesh capacity). The *live* place set is on
    /// [`roster`](SocketNode::roster).
    pub fn places(&self) -> u16 {
        self.places
    }

    /// Maximum place count this mesh may grow to; every table is sized
    /// to it.
    pub fn capacity(&self) -> u16 {
        self.fabric.capacity
    }

    /// The membership roster: which slots are active, joining, draining,
    /// left, or dead — and at which version.
    pub fn roster(&self) -> &RosterBoard {
        &self.fabric.roster
    }

    /// The liveness board fed by the reader threads.
    pub fn liveness(&self) -> &LivenessBoard {
        &self.fabric.liveness
    }

    /// The stats board; `place(me)` carries this process's real framed
    /// bytes.
    pub fn stats(&self) -> &StatsBoard {
        &self.stats
    }

    /// Sends `payload` to `dst` and returns the framed byte count
    /// written to the wire (0 for the loopback `dst == me`, which never
    /// touches a socket and is not accounted — matching the in-process
    /// transport, where local sends are free).
    pub fn send_bytes(&self, dst: PlaceId, payload: Vec<u8>) -> Result<usize, DeadPlaceError> {
        if dst.index() >= self.fabric.capacity as usize {
            return Err(DeadPlaceError { place: dst });
        }
        self.fabric.liveness.check(dst)?;
        if dst == self.fabric.me {
            let _ = self.fabric.inbound_tx.send((self.fabric.me, payload));
            return Ok(0);
        }
        let wire = Frame::Data {
            src: self.fabric.me.0,
            payload,
        }
        .to_wire();
        let n = wire.len();
        let tx = {
            let outboxes = self.fabric.outboxes.lock();
            match &outboxes[dst.index()] {
                Some(tx) => tx.clone(),
                None => return Err(DeadPlaceError { place: dst }),
            }
        };
        // A writer that hit a socket error drops its receiver, so a
        // blocked (outbox-full) send unblocks with an error instead of
        // hanging on a dead peer.
        tx.send(wire).map_err(|_| DeadPlaceError { place: dst })?;
        self.stats.place(self.fabric.me).on_send(n, Duration::ZERO);
        self.fabric.recorder.instant_now(
            self.fabric.me.0,
            RUNTIME_WORKER,
            EventKind::FrameSend,
            n as u64,
        );
        Ok(n)
    }

    /// Non-blocking receive of the next inbound payload.
    pub fn try_recv_bytes(&self) -> Option<(PlaceId, Vec<u8>)> {
        self.inbound_rx.try_recv().ok()
    }

    /// Blocking receive with timeout.
    pub fn recv_bytes_timeout(&self, timeout: Duration) -> Option<(PlaceId, Vec<u8>)> {
        self.inbound_rx.recv_timeout(timeout).ok()
    }

    /// Gracefully *drains out of the mesh*: announces `Leave` on every
    /// live link (peers move this place to `Left` on their rosters —
    /// not `Dead`; no recovery fires), then performs an ordinary
    /// [`shutdown`](SocketNode::shutdown). The engine above must have
    /// relocated any chunks this place owns first — the socket layer
    /// moves bytes, not state.
    pub fn drain(&self) {
        let _ = self.fabric.roster.start_drain(self.fabric.me);
        let leave = Frame::Leave {
            place: self.fabric.me.0,
        }
        .to_wire();
        {
            let outboxes = self.fabric.outboxes.lock();
            for tx in outboxes.iter().flatten() {
                let _ = tx.send(leave.clone());
            }
        }
        let _ = self.fabric.roster.leave(self.fabric.me);
        self.shutdown();
    }

    /// Flushes and closes every connection: queued frames drain, each
    /// writer signs off with `Bye`, writers are joined. Idempotent.
    pub fn shutdown(&self) {
        self.fabric.shutting_down.store(true, Ordering::Release);
        self.fabric.outboxes.lock().iter_mut().for_each(|tx| {
            tx.take();
        });
        let handles: Vec<_> = self.fabric.writer_handles.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    /// Simulates this process being SIGKILLed mid-run: every connection
    /// closes *without* the `Bye` sign-off, so peers see an abrupt EOF
    /// and mark this place dead — the same detection path as a real
    /// process death, but usable when places are in-process threads
    /// (the chaos harness). Idempotent; a later [`shutdown`] is a no-op.
    ///
    /// [`shutdown`]: SocketNode::shutdown
    pub fn crash(&self) {
        self.fabric.crashed.store(true, Ordering::Release);
        self.fabric.shutting_down.store(true, Ordering::Release);
        // Tear the sockets down under every thread cloned onto them —
        // readers (ours and the peers') see EOF immediately, like the
        // kernel closing a killed process's descriptors.
        for stream in self.fabric.streams.lock().iter().flatten() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        self.shutdown();
    }
}

impl Drop for SocketNode {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for SocketNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketNode")
            .field("me", &self.fabric.me)
            .field("places", &self.places)
            .field("capacity", &self.fabric.capacity)
            .finish_non_exhaustive()
    }
}

/// Everything needed to dial into a *running* elastic mesh (contrast
/// [`SocketConfig`], which describes a founding member of the startup
/// handshake). The timing knobs read the same environment variables.
#[derive(Debug)]
pub struct JoinConfig {
    /// The coordinator's (place 0's) listen address.
    pub coordinator: String,
    /// Idle-writer keep-alive interval (`DPX10_HB_MS`, default 250 ms).
    pub heartbeat: Duration,
    /// Silence after which a peer is declared dead (`DPX10_TIMEOUT_MS`,
    /// default 5 s).
    pub peer_timeout: Duration,
    /// Budget for the whole join handshake (`DPX10_CONNECT_MS`,
    /// default 30 s).
    pub connect_timeout: Duration,
    /// Frame-level chaos injection, off by default.
    pub chaos: Option<SocketChaos>,
    /// Flight recorder for frame-level events; disabled by default.
    pub recorder: Recorder,
}

impl JoinConfig {
    /// A join config with environment-default timing, dialing
    /// `coordinator`.
    pub fn new(coordinator: impl Into<String>) -> Self {
        JoinConfig {
            coordinator: coordinator.into(),
            heartbeat: env_ms("DPX10_HB_MS", 250),
            peer_timeout: env_ms("DPX10_TIMEOUT_MS", 5_000),
            connect_timeout: env_ms("DPX10_CONNECT_MS", 30_000),
            chaos: chaos_from_env(),
            recorder: Recorder::disabled(),
        }
    }
}

fn mark_peer(fabric: &LinkFabric, peer: PlaceId) {
    if fabric.shutting_down.load(Ordering::Acquire) {
        return;
    }
    // A drained place signed off through the roster; its links closing
    // afterwards is a goodbye, not a death.
    if fabric.roster.state(peer) == MemberState::Left {
        return;
    }
    fabric.roster.mark_dead(peer);
    fabric.liveness.mark_dead(peer);
}

/// Per-link chaos state for one writer thread: a decision stream forked
/// from the plan seed by `(me, peer)`, and the heartbeat-flap window.
struct LinkChaos {
    cfg: SocketChaos,
    rng: ChaosRng,
    flap_from: Instant,
}

impl LinkChaos {
    fn new(cfg: SocketChaos, me: PlaceId, peer: PlaceId) -> Self {
        LinkChaos {
            cfg,
            rng: ChaosRng::new(cfg.seed)
                .fork(u64::from(me.0))
                .fork(u64::from(peer.0)),
            flap_from: Instant::now() + SocketChaos::FLAP_DELAY,
        }
    }

    fn heartbeat_suppressed(&self) -> bool {
        let Some(pause) = self.cfg.flap else {
            return false;
        };
        let now = Instant::now();
        now >= self.flap_from && now < self.flap_from + pause
    }

    /// Rolls the per-frame dice: `None` drops the frame, otherwise how
    /// long to stall before writing and whether to write it twice.
    fn frame_verdict(&mut self) -> Option<(Duration, bool)> {
        if self.rng.chance(self.cfg.drop_prob) {
            return None;
        }
        let delay = if self.rng.chance(self.cfg.delay_prob) {
            let ms = self.cfg.max_delay.as_millis().max(1) as u64;
            Duration::from_millis(1 + self.rng.below(ms))
        } else {
            Duration::ZERO
        };
        Some((delay, self.rng.chance(self.cfg.dup_prob)))
    }
}

fn writer_loop(
    mut stream: TcpStream,
    peer: PlaceId,
    rx: Receiver<Vec<u8>>,
    fabric: Arc<LinkFabric>,
    mut chaos: Option<LinkChaos>,
) {
    let hb = Frame::Heartbeat.to_wire();
    loop {
        match rx.recv_timeout(fabric.heartbeat) {
            Ok(bytes) => {
                let mut dup = false;
                if let Some(ch) = chaos.as_mut() {
                    match ch.frame_verdict() {
                        Some((delay, d)) => {
                            if !delay.is_zero() {
                                std::thread::sleep(delay);
                            }
                            dup = d;
                        }
                        None => continue, // dropped on the (chaos) floor
                    }
                }
                let ok =
                    stream.write_all(&bytes).is_ok() && (!dup || stream.write_all(&bytes).is_ok());
                if !ok {
                    mark_peer(&fabric, peer);
                    return; // dropping rx unblocks senders with an error
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if chaos.as_ref().is_some_and(LinkChaos::heartbeat_suppressed) {
                    continue;
                }
                if stream.write_all(&hb).is_err() {
                    mark_peer(&fabric, peer);
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                // A crashed node dies silently: no Bye, just the FIN the
                // kernel sends when the stream drops — peers must detect
                // the death, exactly as after a SIGKILL.
                if !fabric.crashed.load(Ordering::Acquire) {
                    let _ = frame::write_frame(&mut stream, &Frame::Bye);
                    let _ = stream.flush();
                }
                return;
            }
        }
    }
}

fn reader_loop(mut stream: TcpStream, peer: PlaceId, fabric: Arc<LinkFabric>) {
    loop {
        match frame::read_frame(&mut stream) {
            Ok(Frame::Data { src, payload }) if src < fabric.capacity => {
                fabric.recorder.instant_now(
                    fabric.me.0,
                    RUNTIME_WORKER,
                    EventKind::FrameRecv,
                    payload.len() as u64,
                );
                let _ = fabric.inbound_tx.send((PlaceId(src), payload));
            }
            Ok(Frame::Heartbeat) => {}
            // A graceful departure: the peer drained its chunks and is
            // leaving. Move it to `Left` (so the EOF that follows is not
            // read as a death) and retire our outbox toward it — the
            // writer sees the dropped channel and signs off with `Bye`.
            Ok(Frame::Leave { place }) if place == peer.0 => {
                let _ = fabric.roster.leave(peer);
                fabric.outboxes.lock()[peer.index()].take();
            }
            Ok(Frame::Bye) => return,
            // A handshake frame (or out-of-range src) after `Go`, EOF,
            // a read timeout, or any decode error: the peer is gone or
            // talking garbage either way.
            Ok(_) | Err(_) => {
                mark_peer(&fabric, peer);
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Elastic membership: the acceptor
// ---------------------------------------------------------------------

/// Post-handshake listener thread of an elastic mesh member. Dial-ins
/// are either a `JoinReq` (a fresh place asking the *coordinator* for
/// admission) or a `JoinHello` (an admitted joiner introducing itself
/// to an existing member). Anything else is dropped on the floor.
fn acceptor_loop(listener: TcpListener, fabric: Arc<LinkFabric>) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    loop {
        if fabric.shutting_down.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => handle_dial_in(stream, &fabric),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// The address map a `JoinAccept` carries: one entry per slot, blank
/// unless the slot holds a member (or an in-flight joiner) whose listen
/// address the coordinator knows — exactly the places the new joiner
/// must dial.
fn join_addrs(roster: &RosterBoard, capacity: u16) -> Vec<String> {
    (0..capacity)
        .map(PlaceId)
        .map(|p| match roster.state(p) {
            MemberState::Joining | MemberState::Active | MemberState::Draining => roster.addr(p),
            _ => String::new(),
        })
        .collect()
}

fn handle_dial_in(stream: TcpStream, fabric: &Arc<LinkFabric>) {
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    if prepare(&stream, fabric.connect_timeout).is_err() {
        return;
    }
    let mut stream = stream;
    match frame::read_frame(&mut stream) {
        // An admitted joiner introducing itself. Register the link
        // *before* flipping the roster, so a poller that sees the new
        // member can immediately send to it.
        Ok(Frame::JoinHello { place })
            if place < fabric.capacity && PlaceId(place) != fabric.me =>
        {
            let peer = PlaceId(place);
            if register_link(fabric, peer, stream).is_ok() {
                let _ = fabric.roster.observe_join(peer);
            }
        }
        // Admission: coordinator only. Grant the lowest vacant slot,
        // hand back the roster snapshot, and bring the link up.
        Ok(Frame::JoinReq { addr }) if fabric.me == PlaceId::ZERO => {
            match fabric.roster.admit(addr) {
                Some(place) => {
                    let accept = Frame::JoinAccept {
                        place: place.0,
                        capacity: fabric.capacity,
                        addrs: join_addrs(&fabric.roster, fabric.capacity),
                    };
                    if frame::write_frame(&mut stream, &accept).is_err() {
                        fabric.roster.mark_dead(place);
                        return;
                    }
                    if register_link(fabric, place, stream).is_ok() {
                        let _ = fabric.roster.activate(place);
                    } else {
                        fabric.roster.mark_dead(place);
                    }
                }
                None => {
                    let _ = frame::write_frame(
                        &mut stream,
                        &Frame::JoinReject {
                            reason: "mesh at capacity".into(),
                        },
                    );
                }
            }
        }
        _ => {} // garbage dial-in: drop the stream
    }
}

// ---------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------

fn hs_err<T>(what: impl Into<String>) -> io::Result<T> {
    Err(io::Error::other(format!("handshake: {}", what.into())))
}

fn read_hs(stream: &mut TcpStream) -> io::Result<Frame> {
    frame::read_frame(stream).map_err(|e| match e {
        FrameError::Io(io) => io,
        other => io::Error::other(format!("handshake: {other}")),
    })
}

fn accept_deadline(listener: &TcpListener, deadline: Instant) -> io::Result<TcpStream> {
    listener.set_nonblocking(true)?;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                listener.set_nonblocking(false)?;
                stream.set_nonblocking(false)?;
                return Ok(stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "handshake: timed out waiting for a place to dial in",
                    ));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn prepare(stream: &TcpStream, timeout: Duration) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(timeout))
}

/// Coordinator side: collect hellos, publish the peer map, collect
/// readies, fire `Go`. Returns `links[p] = Some(stream)` for `p >= 1`
/// plus the collected listen addresses (slot 0 left blank — the caller
/// knows its own listener).
fn handshake_coordinator(
    listener: &TcpListener,
    places: u16,
    timeout: Duration,
) -> io::Result<(Vec<Option<TcpStream>>, Vec<String>)> {
    let deadline = Instant::now() + timeout;
    let mut links: Vec<Option<TcpStream>> = (0..places).map(|_| None).collect();
    let mut addrs = vec![String::new(); places as usize];
    for _ in 1..places {
        let mut stream = accept_deadline(listener, deadline)?;
        prepare(&stream, timeout)?;
        match read_hs(&mut stream)? {
            Frame::Hello {
                place,
                places: claimed,
                addr,
            } => {
                if claimed != places {
                    return hs_err(format!(
                        "place {place} expects {claimed} places, not {places}"
                    ));
                }
                if place == 0 || place >= places {
                    return hs_err(format!("hello from out-of-range place {place}"));
                }
                if links[place as usize].is_some() {
                    return hs_err(format!("duplicate hello from place {place}"));
                }
                if addr.is_empty() {
                    return hs_err(format!("place {place} sent no listen address"));
                }
                addrs[place as usize] = addr;
                links[place as usize] = Some(stream);
            }
            other => return hs_err(format!("expected hello, got {other:?}")),
        }
    }
    let map = Frame::PeerMap {
        addrs: addrs.clone(),
    };
    for stream in links.iter_mut().flatten() {
        frame::write_frame(stream, &map)?;
    }
    for (p, stream) in links.iter_mut().enumerate() {
        let Some(stream) = stream else { continue };
        match read_hs(stream)? {
            Frame::Ready => {}
            other => return hs_err(format!("expected ready from place {p}, got {other:?}")),
        }
    }
    for stream in links.iter_mut().flatten() {
        frame::write_frame(stream, &Frame::Go)?;
    }
    Ok((links, addrs))
}

fn resolve(addr: &str) -> io::Result<SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, format!("unresolvable {addr}")))
}

/// Worker side of the handshake; see the module docs for the sequence.
/// Returns the links, this worker's (still-bound) listener — kept so an
/// elastic mesh can accept joiner dial-ins after the handshake — and
/// the peer address map (slot 0 left blank).
fn handshake_worker(
    me: PlaceId,
    places: u16,
    coordinator: &str,
    bind: Option<&str>,
    timeout: Duration,
) -> io::Result<(Vec<Option<TcpStream>>, TcpListener, Vec<String>)> {
    let deadline = Instant::now() + timeout;
    let listener = match bind {
        Some(addr) => TcpListener::bind(addr)?,
        None => TcpListener::bind("127.0.0.1:0")?,
    };
    let my_addr = listener.local_addr()?.to_string();

    let mut coord = TcpStream::connect_timeout(&resolve(coordinator)?, timeout)?;
    prepare(&coord, timeout)?;
    frame::write_frame(
        &mut coord,
        &Frame::Hello {
            place: me.0,
            places,
            addr: my_addr.clone(),
        },
    )?;
    let addrs = match read_hs(&mut coord)? {
        Frame::PeerMap { addrs } if addrs.len() == places as usize => addrs,
        Frame::PeerMap { addrs } => {
            return hs_err(format!("peer map of {} for {places} places", addrs.len()))
        }
        other => return hs_err(format!("expected peer map, got {other:?}")),
    };

    let mut links: Vec<Option<TcpStream>> = (0..places).map(|_| None).collect();
    // Dial every lower-numbered worker; their listeners are bound before
    // they dial the coordinator, so the connections queue in the backlog
    // even if the peer has not reached `accept` yet.
    for p in 1..me.0 {
        let mut stream = TcpStream::connect_timeout(&resolve(&addrs[p as usize])?, timeout)?;
        prepare(&stream, timeout)?;
        frame::write_frame(
            &mut stream,
            &Frame::Hello {
                place: me.0,
                places,
                addr: String::new(),
            },
        )?;
        links[p as usize] = Some(stream);
    }
    // Accept the higher-numbered workers dialing us.
    for _ in me.0 + 1..places {
        let mut stream = accept_deadline(&listener, deadline)?;
        prepare(&stream, timeout)?;
        match read_hs(&mut stream)? {
            Frame::Hello { place, .. } => {
                if place <= me.0 || place >= places {
                    return hs_err(format!("unexpected dial-in from place {place}"));
                }
                if links[place as usize].is_some() {
                    return hs_err(format!("duplicate dial-in from place {place}"));
                }
                links[place as usize] = Some(stream);
            }
            other => return hs_err(format!("expected hello, got {other:?}")),
        }
    }
    frame::write_frame(&mut coord, &Frame::Ready)?;
    match read_hs(&mut coord)? {
        Frame::Go => {}
        other => return hs_err(format!("expected go, got {other:?}")),
    }
    links[0] = Some(coord);
    let mut addrs = addrs;
    addrs[0] = String::new();
    addrs[me.index()] = my_addr;
    Ok((links, listener, addrs))
}

// ---------------------------------------------------------------------
// Typed facade
// ---------------------------------------------------------------------

/// [`Transport`] adapter over a [`SocketNode`]: encodes `M` with
/// [`Codec`] on send, decodes on receive. A payload that fails to decode
/// marks the *sender* dead (its stream is corrupt) instead of panicking.
pub struct SocketTransport<M> {
    node: Arc<SocketNode>,
    _marker: PhantomData<fn() -> M>,
}

impl<M> SocketTransport<M> {
    /// Wraps a connected node.
    pub fn new(node: Arc<SocketNode>) -> Self {
        SocketTransport {
            node,
            _marker: PhantomData,
        }
    }

    /// The underlying byte-level node.
    pub fn node(&self) -> &Arc<SocketNode> {
        &self.node
    }

    fn decode_or_mark(&self, src: PlaceId, bytes: &[u8]) -> Option<M>
    where
        M: Codec,
    {
        match decode_exact::<M>(bytes) {
            Some(msg) => Some(msg),
            None => {
                if src != self.node.me() {
                    mark_peer(&self.node.fabric, src);
                }
                None
            }
        }
    }
}

impl<M: Codec + Send> Transport<M> for SocketTransport<M> {
    fn num_places(&self) -> u16 {
        self.node.places
    }

    fn liveness(&self) -> &LivenessBoard {
        self.node.liveness()
    }

    fn send(
        &self,
        src: PlaceId,
        dst: PlaceId,
        msg: M,
        _wire_bytes: usize,
    ) -> Result<(), DeadPlaceError> {
        debug_assert_eq!(src, self.node.me(), "socket sends originate locally");
        let mut buf = Vec::with_capacity(msg.wire_size().saturating_add(8));
        msg.encode(&mut buf);
        self.node.send_bytes(dst, buf).map(|_| ())
    }

    fn try_recv(&self, at: PlaceId) -> Option<Envelope<M>> {
        debug_assert_eq!(at, self.node.me(), "socket receives are local");
        loop {
            let (src, bytes) = self.node.try_recv_bytes()?;
            if let Some(msg) = self.decode_or_mark(src, &bytes) {
                return Some(Envelope { src, msg });
            }
        }
    }

    fn recv_timeout(&self, at: PlaceId, timeout: Duration) -> Option<Envelope<M>> {
        debug_assert_eq!(at, self.node.me(), "socket receives are local");
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let (src, bytes) = self.node.recv_bytes_timeout(remaining)?;
            if let Some(msg) = self.decode_or_mark(src, &bytes) {
                return Some(Envelope { src, msg });
            }
            if Instant::now() >= deadline {
                return None;
            }
        }
    }

    fn shutdown(&self) {
        self.node.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh(n: u16) -> Vec<SocketNode> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let mut handles = Vec::new();
        for p in 1..n {
            let addr = addr.clone();
            handles.push(std::thread::spawn(move || {
                SocketNode::connect(SocketConfig::worker(PlaceId(p), n, addr)).unwrap()
            }));
        }
        let mut nodes = vec![SocketNode::connect(SocketConfig::coordinator(listener, n)).unwrap()];
        for h in handles {
            nodes.push(h.join().unwrap());
        }
        nodes.sort_by_key(|nd| nd.me().0);
        nodes
    }

    #[test]
    fn four_place_mesh_delivers_everywhere() {
        let nodes = mesh(4);
        for src in 0..4u16 {
            for dst in 0..4u16 {
                nodes[src as usize]
                    .send_bytes(PlaceId(dst), vec![src as u8, dst as u8])
                    .unwrap();
            }
        }
        for dst in 0..4u16 {
            let mut seen = Vec::new();
            while seen.len() < 4 {
                let (src, payload) = nodes[dst as usize]
                    .recv_bytes_timeout(Duration::from_secs(5))
                    .expect("payload arrives");
                assert_eq!(payload, vec![src.0 as u8, dst as u8]);
                seen.push(src.0);
            }
            seen.sort_unstable();
            assert_eq!(seen, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn framed_bytes_are_accounted_loopback_is_not() {
        let nodes = mesh(2);
        let n = nodes[0].send_bytes(PlaceId(1), vec![7; 10]).unwrap();
        assert_eq!(n, frame::framed_len(2 + 10)); // u16 src + payload
        assert_eq!(nodes[0].send_bytes(PlaceId(0), vec![7; 10]).unwrap(), 0);
        let snap = nodes[0].stats().snapshot();
        assert_eq!(snap.messages_sent, 1);
        assert_eq!(snap.bytes_sent, n as u64);
        assert_eq!(snap.net_time, Duration::ZERO);
    }

    #[test]
    fn abrupt_peer_death_is_detected_and_sends_fail() {
        // A 2-place mesh where place 1 is a hand-rolled impostor that
        // completes the handshake and then vanishes without `Bye` —
        // the coordinator's reader must see the closed stream and mark
        // place 1 dead, exactly as if the process had been SIGKILLed.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let impostor = std::thread::spawn(move || {
            let own = TcpListener::bind("127.0.0.1:0").unwrap();
            let mut coord = TcpStream::connect(addr).unwrap();
            frame::write_frame(
                &mut coord,
                &Frame::Hello {
                    place: 1,
                    places: 2,
                    addr: own.local_addr().unwrap().to_string(),
                },
            )
            .unwrap();
            assert!(matches!(
                frame::read_frame(&mut coord).unwrap(),
                Frame::PeerMap { .. }
            ));
            frame::write_frame(&mut coord, &Frame::Ready).unwrap();
            assert!(matches!(frame::read_frame(&mut coord).unwrap(), Frame::Go));
            // Die abruptly: stream drops, kernel sends FIN, no Bye.
        });
        let node = SocketNode::connect(SocketConfig::coordinator(listener, 2)).unwrap();
        impostor.join().unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while node.liveness().is_alive(PlaceId(1)) {
            assert!(Instant::now() < deadline, "death never detected");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(
            node.send_bytes(PlaceId(1), vec![1]).unwrap_err().place,
            PlaceId(1)
        );
    }

    #[test]
    fn graceful_shutdown_is_not_a_death() {
        let mut nodes = mesh(3);
        let victim = nodes.remove(2);
        victim.shutdown(); // sends Bye on every link
        drop(victim);
        // Give the survivors' readers a moment to consume the Bye.
        std::thread::sleep(Duration::from_millis(100));
        assert!(nodes[0].liveness().is_alive(PlaceId(2)));
        // The other two places still talk.
        nodes[0].send_bytes(PlaceId(1), vec![9]).unwrap();
        let (src, payload) = nodes[1].recv_bytes_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!((src, payload), (PlaceId(0), vec![9]));
    }

    #[test]
    fn typed_transport_round_trips_and_rejects_corruption() {
        let mut nodes = mesh(2).into_iter();
        let a: SocketTransport<(u64, String)> =
            SocketTransport::new(Arc::new(nodes.next().unwrap()));
        let b: SocketTransport<(u64, String)> =
            SocketTransport::new(Arc::new(nodes.next().unwrap()));
        a.send(PlaceId(0), PlaceId(1), (42, "hi".into()), 0)
            .unwrap();
        let env = b.recv_timeout(PlaceId(1), Duration::from_secs(5)).unwrap();
        assert_eq!(env.src, PlaceId(0));
        assert_eq!(env.msg, (42, "hi".into()));

        // Corrupt payload: raw bytes that do not decode as the type.
        b.node().send_bytes(PlaceId(0), vec![1, 2, 3]).unwrap();
        assert!(a
            .recv_timeout(PlaceId(0), Duration::from_millis(300))
            .is_none());
        assert!(
            !a.liveness().is_alive(PlaceId(1)),
            "corrupt sender marked dead"
        );
    }

    #[test]
    fn from_env_absent_is_none() {
        // DPX10_PLACE is not set in the test environment.
        assert!(SocketConfig::from_env().unwrap().is_none());
    }

    #[test]
    fn parse_chaos_round_trips_and_rejects_garbage() {
        let ch = parse_chaos("seed=7,delay=0.25,delay_ms=3,dup=0.1,drop=0.05,flap_ms=400").unwrap();
        assert_eq!(ch.seed, 7);
        assert_eq!(ch.delay_prob, 0.25);
        assert_eq!(ch.max_delay, Duration::from_millis(3));
        assert_eq!(ch.dup_prob, 0.1);
        assert_eq!(ch.drop_prob, 0.05);
        assert_eq!(ch.flap, Some(Duration::from_millis(400)));
        assert_eq!(parse_chaos("seed=9").unwrap().delay_prob, 0.0);
        assert!(parse_chaos("bogus").is_none());
        assert!(parse_chaos("seed=notanumber").is_none());
    }

    /// Satellite of the chaos PR: a static `DPX10_PEERS`-style worker
    /// may list `127.0.0.1:0` — the handshake's `Hello` carries the
    /// actually-bound ephemeral address, so parallel meshes can never
    /// collide on a fixed port.
    #[test]
    fn static_worker_bind_may_be_an_ephemeral_port() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let mut handles = Vec::new();
        for p in 1..3u16 {
            let addr = addr.clone();
            handles.push(std::thread::spawn(move || {
                let mut cfg = SocketConfig::worker(PlaceId(p), 3, addr);
                cfg.mode = match cfg.mode {
                    ConnectMode::Worker { coordinator, .. } => ConnectMode::Worker {
                        coordinator,
                        bind: Some("127.0.0.1:0".into()),
                    },
                    other => other,
                };
                SocketNode::connect(cfg).unwrap()
            }));
        }
        let n0 = SocketNode::connect(SocketConfig::coordinator(listener, 3)).unwrap();
        let nodes: Vec<SocketNode> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // The mesh is fully connected, workers included.
        nodes[0].send_bytes(PlaceId(2), vec![1]).unwrap();
        let (src, payload) = nodes[1].recv_bytes_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!((src, payload), (PlaceId(1), vec![1]));
        drop(n0);
    }

    #[test]
    fn crash_is_detected_as_a_death_not_a_goodbye() {
        let mut nodes = mesh(3);
        let victim = nodes.remove(2);
        victim.crash(); // closes every link with no Bye
        drop(victim);
        let deadline = Instant::now() + Duration::from_secs(10);
        while nodes[0].liveness().is_alive(PlaceId(2)) || nodes[1].liveness().is_alive(PlaceId(2)) {
            assert!(Instant::now() < deadline, "crash never detected");
            std::thread::sleep(Duration::from_millis(5));
        }
        // Survivors keep talking.
        nodes[0].send_bytes(PlaceId(1), vec![3]).unwrap();
        let (src, payload) = nodes[1].recv_bytes_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!((src, payload), (PlaceId(0), vec![3]));
    }

    fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while !cond() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Tentpole: a place joins a *running* mesh (no relaunch), talks in
    /// both directions, then drains back out — and the departure is a
    /// `Left`, never a death.
    #[test]
    fn join_grows_a_live_mesh_and_drain_leaves_without_death() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let elastic = |mut cfg: SocketConfig| {
            cfg.max_places = 4;
            cfg
        };
        let worker = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                SocketNode::connect(elastic(SocketConfig::worker(PlaceId(1), 2, addr))).unwrap()
            })
        };
        let n0 = SocketNode::connect(elastic(SocketConfig::coordinator(listener, 2))).unwrap();
        let n1 = worker.join().unwrap();
        assert_eq!(n0.capacity(), 4);
        assert_eq!(n0.roster().member_count(), 2);

        let n2 = SocketNode::join(JoinConfig::new(addr)).unwrap();
        assert_eq!(n2.me(), PlaceId(2));
        assert_eq!(n2.capacity(), 4);
        assert_eq!(n2.roster().member_count(), 3);

        // The joiner reaches both founders immediately...
        n2.send_bytes(PlaceId(0), vec![20]).unwrap();
        n2.send_bytes(PlaceId(1), vec![21]).unwrap();
        let (src, payload) = n0.recv_bytes_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!((src, payload), (PlaceId(2), vec![20]));
        let (src, payload) = n1.recv_bytes_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!((src, payload), (PlaceId(2), vec![21]));
        // ...and the founders learn of it (place 0 from the JoinReq,
        // place 1 from the JoinHello dial-in) and reach it back.
        wait_for("founders to see the joiner", || {
            n0.roster().is_member(PlaceId(2)) && n1.roster().is_member(PlaceId(2))
        });
        n0.send_bytes(PlaceId(2), vec![2]).unwrap();
        n1.send_bytes(PlaceId(2), vec![12]).unwrap();
        let mut got = Vec::new();
        for _ in 0..2 {
            let (src, payload) = n2.recv_bytes_timeout(Duration::from_secs(5)).unwrap();
            got.push((src, payload));
        }
        got.sort();
        assert_eq!(got, vec![(PlaceId(0), vec![2]), (PlaceId(1), vec![12])]);

        // Drain back out: peers see `Left`, not `Dead` — no recovery.
        n2.drain();
        wait_for("drain to propagate", || {
            n0.roster().state(PlaceId(2)) == MemberState::Left
                && n1.roster().state(PlaceId(2)) == MemberState::Left
        });
        assert!(n0.liveness().is_alive(PlaceId(2)), "a drain is not a death");
        assert!(n1.liveness().is_alive(PlaceId(2)), "a drain is not a death");
        assert_eq!(n0.roster().member_count(), 2);
        // The surviving mesh keeps working.
        n0.send_bytes(PlaceId(1), vec![9]).unwrap();
        let (src, payload) = n1.recv_bytes_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!((src, payload), (PlaceId(0), vec![9]));
    }

    #[test]
    fn join_is_rejected_at_capacity_and_ids_are_not_reused() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let worker = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut cfg = SocketConfig::worker(PlaceId(1), 2, addr);
                cfg.max_places = 3;
                SocketNode::connect(cfg).unwrap()
            })
        };
        let mut cfg = SocketConfig::coordinator(listener, 2);
        cfg.max_places = 3;
        let n0 = SocketNode::connect(cfg).unwrap();
        let n1 = worker.join().unwrap();
        let n2 = SocketNode::join(JoinConfig::new(addr.clone())).unwrap();
        assert_eq!(n2.me(), PlaceId(2));
        // Slot 3 does not exist: the mesh is full.
        let err = SocketNode::join(JoinConfig::new(addr.clone())).unwrap_err();
        assert!(
            err.to_string().contains("mesh at capacity"),
            "unexpected error: {err}"
        );
        // Even after place 2 drains, its id is never handed out again —
        // the roster guarantees id freshness for the epoch fence.
        n2.drain();
        let deadline = Instant::now() + Duration::from_secs(10);
        while n0.roster().state(PlaceId(2)) != MemberState::Left {
            assert!(Instant::now() < deadline, "drain never propagated");
            std::thread::sleep(Duration::from_millis(5));
        }
        let err = SocketNode::join(JoinConfig::new(addr)).unwrap_err();
        assert!(err.to_string().contains("mesh at capacity"));
        drop(n1);
    }

    fn chaos_mesh(n: u16, chaos: SocketChaos) -> Vec<SocketNode> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let mut handles = Vec::new();
        for p in 1..n {
            let addr = addr.clone();
            handles.push(std::thread::spawn(move || {
                let mut cfg = SocketConfig::worker(PlaceId(p), n, addr);
                cfg.chaos = Some(chaos);
                SocketNode::connect(cfg).unwrap()
            }));
        }
        let mut cfg = SocketConfig::coordinator(listener, n);
        cfg.chaos = Some(chaos);
        let mut nodes = vec![SocketNode::connect(cfg).unwrap()];
        for h in handles {
            nodes.push(h.join().unwrap());
        }
        nodes.sort_by_key(|nd| nd.me().0);
        nodes
    }

    #[test]
    fn delay_chaos_perturbs_but_loses_nothing() {
        let nodes = chaos_mesh(
            2,
            SocketChaos::delay_only(11, 0.5, Duration::from_millis(2)),
        );
        for v in 0..40u8 {
            nodes[0].send_bytes(PlaceId(1), vec![v]).unwrap();
        }
        let mut got = Vec::new();
        while got.len() < 40 {
            let (_, payload) = nodes[1]
                .recv_bytes_timeout(Duration::from_secs(5))
                .expect("delayed frames still arrive");
            got.push(payload[0]);
        }
        // Writer-side delay stalls the FIFO link, so order holds; the
        // point is that nothing is lost or damaged under delay chaos.
        assert_eq!(got, (0..40).collect::<Vec<u8>>());
    }

    #[test]
    fn heartbeat_flap_longer_than_the_peer_timeout_kills_the_link() {
        // Tight timings so the test is fast: 30 ms heartbeats, 150 ms
        // peer timeout, and a flap window (0.5 s after connect) longer
        // than the timeout. The links fall silent, both sides declare
        // the other dead — the detection path the flap exists to test.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let chaos = SocketChaos {
            seed: 1,
            delay_prob: 0.0,
            max_delay: Duration::ZERO,
            dup_prob: 0.0,
            drop_prob: 0.0,
            flap: Some(Duration::from_secs(2)),
        };
        let tighten = move |mut cfg: SocketConfig| {
            cfg.heartbeat = Duration::from_millis(30);
            cfg.peer_timeout = Duration::from_millis(150);
            cfg.chaos = Some(chaos);
            cfg
        };
        let worker = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                SocketNode::connect(tighten(SocketConfig::worker(PlaceId(1), 2, addr))).unwrap()
            })
        };
        let n0 = SocketNode::connect(tighten(SocketConfig::coordinator(listener, 2))).unwrap();
        let n1 = worker.join().unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while n0.liveness().is_alive(PlaceId(1)) {
            assert!(Instant::now() < deadline, "flap never killed the link");
            std::thread::sleep(Duration::from_millis(10));
        }
        drop(n1);
    }
}

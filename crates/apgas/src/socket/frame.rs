//! Length-prefixed frames for the socket transport.
//!
//! Wire layout of one frame:
//!
//! ```text
//! [u32 len (LE)] [u8 kind] [body...]     len = 1 + body.len()
//! ```
//!
//! Bodies reuse the workspace's hand-rolled [`Codec`] format. Decoding is
//! total: every malformed, truncated or hostile input comes back as a
//! [`FrameError`] — a corrupt peer must never be able to panic (or OOM)
//! the process reading from it.

use std::fmt;
use std::io::{self, Read, Write};

use crate::codec::{decode_exact, Codec};

/// Magic prefix of a [`Frame::Hello`], guarding against a stranger (or a
/// different protocol) dialing the port.
pub const HELLO_MAGIC: u32 = 0x4450_5831; // "DPX1"

/// Hard ceiling on one frame's body, bounding the allocation a hostile
/// length prefix can provoke.
pub const MAX_BODY: usize = 64 * 1024 * 1024;

/// Bytes a frame with `body` bytes of payload occupies on the wire.
#[inline]
pub fn framed_len(body: usize) -> usize {
    4 + 1 + body
}

/// Everything that can go wrong reading or decoding a frame.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying socket failed (includes read timeouts, surfaced as
    /// `WouldBlock`/`TimedOut`, and mid-frame EOF as `UnexpectedEof`).
    Io(io::Error),
    /// The peer closed the connection on a frame boundary.
    Closed,
    /// The length prefix is zero or exceeds [`MAX_BODY`].
    BadLength(usize),
    /// The kind byte names no known frame.
    BadKind(u8),
    /// The body did not decode as the advertised kind.
    Malformed(&'static str),
}

impl FrameError {
    /// Whether this error is a read timeout (no traffic within the
    /// configured window) rather than a hard failure.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut
        )
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "socket error: {e}"),
            FrameError::Closed => write!(f, "connection closed by peer"),
            FrameError::BadLength(n) => write!(f, "bad frame length {n} (max {MAX_BODY})"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::Malformed(what) => write!(f, "malformed frame body: {what}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// One unit of the socket protocol.
///
/// `Hello`/`PeerMap`/`Ready`/`Go` form the mesh handshake;
/// `Data`/`Heartbeat`/`Bye` are the steady state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// First frame on every dialed connection: who is calling.
    Hello {
        /// The dialing place.
        place: u16,
        /// Total places the dialer believes in (cross-checked).
        places: u16,
        /// The dialer's own listen address (empty on peer-to-peer dials,
        /// where the coordinator already published it).
        addr: String,
    },
    /// Coordinator → worker: listen address of every place, indexed by
    /// place id (entry 0 is unused).
    PeerMap {
        /// `addrs[p]` is place `p`'s listen address.
        addrs: Vec<String>,
    },
    /// Worker → coordinator: fully meshed, ready to start.
    Ready,
    /// Coordinator → worker: everyone is ready, start the run.
    Go,
    /// An application payload from `src`, opaque to the transport.
    Data {
        /// Originating place.
        src: u16,
        /// Encoded message bytes.
        payload: Vec<u8>,
    },
    /// Keep-alive written by an idle writer; resets the peer's silence
    /// timer.
    Heartbeat,
    /// Graceful goodbye; the reader exits without declaring the peer
    /// dead.
    Bye,
    /// Joiner → coordinator: ask to be admitted into a *running* mesh.
    /// Carries the joiner's own listen address so existing members can
    /// be told where to find it.
    JoinReq {
        /// The joiner's listen address.
        addr: String,
    },
    /// Coordinator → joiner: admission granted. Carries the assigned
    /// place id, the mesh capacity (so the joiner sizes its tables
    /// identically), and the listen address of every current member
    /// (empty string for vacant or address-less slots).
    JoinAccept {
        /// The joiner's assigned place id.
        place: u16,
        /// Total place capacity of the mesh.
        capacity: u16,
        /// `addrs[p]` is member `p`'s listen address ("" if vacant).
        addrs: Vec<String>,
    },
    /// Coordinator → joiner: admission denied (mesh at capacity).
    JoinReject {
        /// Why the join was refused.
        reason: String,
    },
    /// Joiner → existing member: first frame on a post-startup dial-in,
    /// identifying the assigned place joining the roster.
    JoinHello {
        /// The joiner's coordinator-assigned place id.
        place: u16,
    },
    /// A draining place's sign-off: it relocated its state and is
    /// leaving the roster *voluntarily*. Readers remove it from the
    /// roster without marking it dead — the opposite of a crash.
    Leave {
        /// The departing place.
        place: u16,
    },
}

const KIND_HELLO: u8 = 0;
const KIND_PEER_MAP: u8 = 1;
const KIND_READY: u8 = 2;
const KIND_GO: u8 = 3;
const KIND_DATA: u8 = 4;
const KIND_HEARTBEAT: u8 = 5;
const KIND_BYE: u8 = 6;
const KIND_JOIN_REQ: u8 = 7;
const KIND_JOIN_ACCEPT: u8 = 8;
const KIND_JOIN_REJECT: u8 = 9;
const KIND_JOIN_HELLO: u8 = 10;
const KIND_LEAVE: u8 = 11;

impl Frame {
    /// Encodes the frame to its full wire representation, length prefix
    /// included.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut buf = vec![0u8; 4]; // length patched below
        match self {
            Frame::Hello {
                place,
                places,
                addr,
            } => {
                buf.push(KIND_HELLO);
                HELLO_MAGIC.encode(&mut buf);
                place.encode(&mut buf);
                places.encode(&mut buf);
                addr.encode(&mut buf);
            }
            Frame::PeerMap { addrs } => {
                buf.push(KIND_PEER_MAP);
                addrs.encode(&mut buf);
            }
            Frame::Ready => buf.push(KIND_READY),
            Frame::Go => buf.push(KIND_GO),
            Frame::Data { src, payload } => {
                buf.push(KIND_DATA);
                src.encode(&mut buf);
                buf.extend_from_slice(payload);
            }
            Frame::Heartbeat => buf.push(KIND_HEARTBEAT),
            Frame::Bye => buf.push(KIND_BYE),
            Frame::JoinReq { addr } => {
                buf.push(KIND_JOIN_REQ);
                HELLO_MAGIC.encode(&mut buf);
                addr.encode(&mut buf);
            }
            Frame::JoinAccept {
                place,
                capacity,
                addrs,
            } => {
                buf.push(KIND_JOIN_ACCEPT);
                place.encode(&mut buf);
                capacity.encode(&mut buf);
                addrs.encode(&mut buf);
            }
            Frame::JoinReject { reason } => {
                buf.push(KIND_JOIN_REJECT);
                reason.encode(&mut buf);
            }
            Frame::JoinHello { place } => {
                buf.push(KIND_JOIN_HELLO);
                HELLO_MAGIC.encode(&mut buf);
                place.encode(&mut buf);
            }
            Frame::Leave { place } => {
                buf.push(KIND_LEAVE);
                place.encode(&mut buf);
            }
        }
        let body_len = (buf.len() - 4) as u32;
        buf[..4].copy_from_slice(&body_len.to_le_bytes());
        buf
    }

    /// Decodes a frame body (kind byte + fields, no length prefix).
    pub fn decode_body(body: &[u8]) -> Result<Frame, FrameError> {
        let (&kind, mut rest) = body
            .split_first()
            .ok_or(FrameError::Malformed("empty body"))?;
        match kind {
            KIND_HELLO => {
                let magic = u32::decode(&mut rest)
                    .ok_or(FrameError::Malformed("hello: truncated magic"))?;
                if magic != HELLO_MAGIC {
                    return Err(FrameError::Malformed("hello: bad magic"));
                }
                let rec: (u16, u16, String) =
                    decode_exact(rest).ok_or(FrameError::Malformed("hello: bad fields"))?;
                let (place, places, addr) = rec;
                Ok(Frame::Hello {
                    place,
                    places,
                    addr,
                })
            }
            KIND_PEER_MAP => {
                let addrs: Vec<String> =
                    decode_exact(rest).ok_or(FrameError::Malformed("peer map: bad fields"))?;
                Ok(Frame::PeerMap { addrs })
            }
            KIND_READY => empty(rest, Frame::Ready, "ready"),
            KIND_GO => empty(rest, Frame::Go, "go"),
            KIND_DATA => {
                let src =
                    u16::decode(&mut rest).ok_or(FrameError::Malformed("data: truncated src"))?;
                Ok(Frame::Data {
                    src,
                    payload: rest.to_vec(),
                })
            }
            KIND_HEARTBEAT => empty(rest, Frame::Heartbeat, "heartbeat"),
            KIND_BYE => empty(rest, Frame::Bye, "bye"),
            KIND_JOIN_REQ => {
                let magic = u32::decode(&mut rest)
                    .ok_or(FrameError::Malformed("join req: truncated magic"))?;
                if magic != HELLO_MAGIC {
                    return Err(FrameError::Malformed("join req: bad magic"));
                }
                let addr: String =
                    decode_exact(rest).ok_or(FrameError::Malformed("join req: bad addr"))?;
                Ok(Frame::JoinReq { addr })
            }
            KIND_JOIN_ACCEPT => {
                let rec: (u16, u16, Vec<String>) =
                    decode_exact(rest).ok_or(FrameError::Malformed("join accept: bad fields"))?;
                let (place, capacity, addrs) = rec;
                Ok(Frame::JoinAccept {
                    place,
                    capacity,
                    addrs,
                })
            }
            KIND_JOIN_REJECT => {
                let reason: String =
                    decode_exact(rest).ok_or(FrameError::Malformed("join reject: bad reason"))?;
                Ok(Frame::JoinReject { reason })
            }
            KIND_JOIN_HELLO => {
                let magic = u32::decode(&mut rest)
                    .ok_or(FrameError::Malformed("join hello: truncated magic"))?;
                if magic != HELLO_MAGIC {
                    return Err(FrameError::Malformed("join hello: bad magic"));
                }
                let place: u16 =
                    decode_exact(rest).ok_or(FrameError::Malformed("join hello: bad place"))?;
                Ok(Frame::JoinHello { place })
            }
            KIND_LEAVE => {
                let place: u16 =
                    decode_exact(rest).ok_or(FrameError::Malformed("leave: bad place"))?;
                Ok(Frame::Leave { place })
            }
            other => Err(FrameError::BadKind(other)),
        }
    }
}

fn empty(rest: &[u8], frame: Frame, what: &'static str) -> Result<Frame, FrameError> {
    if rest.is_empty() {
        Ok(frame)
    } else {
        let _ = what;
        Err(FrameError::Malformed("trailing bytes on bodyless frame"))
    }
}

/// Writes one frame to `w` (no flush; callers batch or flush as needed).
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    w.write_all(&frame.to_wire())
}

/// Reads one frame from `r`.
///
/// EOF *before the first length byte* is a clean [`FrameError::Closed`];
/// EOF inside a frame is an [`FrameError::Io`] with `UnexpectedEof`. The
/// body allocation is bounded by [`MAX_BODY`] regardless of what the peer
/// claims.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, FrameError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Err(FrameError::Closed),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 || len > MAX_BODY {
        return Err(FrameError::BadLength(len));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Frame::decode_body(&body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(f: &Frame) {
        let wire = f.to_wire();
        assert_eq!(framed_len(wire.len() - 5), wire.len());
        let mut cursor = &wire[..];
        let back = read_frame(&mut cursor).unwrap();
        assert_eq!(&back, f);
        assert!(cursor.is_empty(), "frame fully consumed");
    }

    #[test]
    fn all_kinds_round_trip() {
        round_trip(&Frame::Hello {
            place: 3,
            places: 8,
            addr: "127.0.0.1:4821".into(),
        });
        round_trip(&Frame::PeerMap {
            addrs: vec!["".into(), "127.0.0.1:1".into(), "127.0.0.1:2".into()],
        });
        round_trip(&Frame::Ready);
        round_trip(&Frame::Go);
        round_trip(&Frame::Data {
            src: 5,
            payload: vec![1, 2, 3, 255, 0],
        });
        round_trip(&Frame::Data {
            src: 0,
            payload: Vec::new(),
        });
        round_trip(&Frame::Heartbeat);
        round_trip(&Frame::Bye);
        round_trip(&Frame::JoinReq {
            addr: "127.0.0.1:9000".into(),
        });
        round_trip(&Frame::JoinAccept {
            place: 4,
            capacity: 6,
            addrs: vec!["127.0.0.1:1".into(), String::new(), "127.0.0.1:3".into()],
        });
        round_trip(&Frame::JoinReject {
            reason: "mesh at capacity".into(),
        });
        round_trip(&Frame::JoinHello { place: 4 });
        round_trip(&Frame::Leave { place: 4 });
    }

    #[test]
    fn join_frames_reject_bad_magic_and_truncation() {
        let mut body = vec![KIND_JOIN_REQ];
        0xdead_beefu32.encode(&mut body);
        String::from("x").encode(&mut body);
        assert!(matches!(
            Frame::decode_body(&body),
            Err(FrameError::Malformed("join req: bad magic"))
        ));
        let wire = Frame::JoinAccept {
            place: 1,
            capacity: 2,
            addrs: vec!["a".into()],
        }
        .to_wire();
        // Truncate inside the address vector: the body decode must fail
        // cleanly rather than panic.
        assert!(matches!(
            Frame::decode_body(&wire[5..wire.len() - 1]),
            Err(FrameError::Malformed(_))
        ));
        assert!(matches!(
            Frame::decode_body(&[KIND_LEAVE]),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn eof_on_boundary_is_closed() {
        let mut empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut empty), Err(FrameError::Closed)));
    }

    #[test]
    fn eof_inside_header_is_io() {
        let mut short: &[u8] = &[5, 0];
        assert!(matches!(read_frame(&mut short), Err(FrameError::Io(_))));
    }

    #[test]
    fn eof_inside_body_is_io() {
        let wire = Frame::Data {
            src: 1,
            payload: vec![9; 32],
        }
        .to_wire();
        let mut truncated = &wire[..wire.len() - 1];
        assert!(matches!(read_frame(&mut truncated), Err(FrameError::Io(_))));
    }

    #[test]
    fn hostile_length_is_rejected_without_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        wire.push(KIND_DATA);
        let mut cursor = &wire[..];
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::BadLength(_))
        ));
        let mut zero: &[u8] = &[0, 0, 0, 0];
        assert!(matches!(
            read_frame(&mut zero),
            Err(FrameError::BadLength(0))
        ));
    }

    #[test]
    fn bad_kind_and_bad_magic_are_errors() {
        assert!(matches!(
            Frame::decode_body(&[42]),
            Err(FrameError::BadKind(42))
        ));
        let mut body = vec![KIND_HELLO];
        0xdead_beefu32.encode(&mut body);
        3u16.encode(&mut body);
        8u16.encode(&mut body);
        String::new().encode(&mut body);
        assert!(matches!(
            Frame::decode_body(&body),
            Err(FrameError::Malformed("hello: bad magic"))
        ));
    }

    #[test]
    fn trailing_bytes_on_bodyless_frames_are_rejected() {
        assert!(matches!(
            Frame::decode_body(&[KIND_READY, 0]),
            Err(FrameError::Malformed(_))
        ));
    }
}

//! The transport abstraction: how typed messages move between places.
//!
//! The engines in `dpx10-core` speak to their peers through a
//! [`Transport`] trait object, so the same vertex-execution code runs on
//! two very different substrates:
//!
//! * [`LocalTransport`] — the original in-process mailboxes
//!   ([`crate::mailbox`]): places are worker-thread pools in one process,
//!   messages move by handing the value over a channel (no
//!   serialization), and each send is *priced* through the
//!   [`NetworkModel`] so experiments can report what the transfer would
//!   have cost on a real interconnect.
//! * [`crate::socket::SocketTransport`] — one OS process per place,
//!   connected by a TCP mesh. Messages are encoded with [`crate::Codec`],
//!   framed, and the stats record the bytes *actually* written to the
//!   socket; no network model is involved.
//!
//! The trait is object safe: engines hold an `Arc<dyn Transport<M>>`.

use std::time::Duration;

use crate::fault::{DeadPlaceError, LivenessBoard};
use crate::mailbox::{post_office, Envelope, Mailbox, MailboxSender};
use crate::network::NetworkModel;
use crate::place::{PlaceId, Topology};
use crate::stats::StatsBoard;

/// Moves messages of type `M` between places.
///
/// `wire_bytes` on [`send`](Transport::send) is the *modelled* size of
/// the message (what [`crate::Codec::wire_size`] reports); the local
/// transport prices transfers with it, while byte-level transports ignore
/// it and account the bytes they really frame.
pub trait Transport<M: Send>: Send + Sync {
    /// Number of places this transport connects.
    fn num_places(&self) -> u16;

    /// The shared liveness flags; transports mark places dead here when
    /// they detect a failure.
    fn liveness(&self) -> &LivenessBoard;

    /// Sends `msg` from `src` to `dst`; fails if `dst` is dead.
    fn send(
        &self,
        src: PlaceId,
        dst: PlaceId,
        msg: M,
        wire_bytes: usize,
    ) -> Result<(), DeadPlaceError>;

    /// Non-blocking receive on `at`'s inbox.
    fn try_recv(&self, at: PlaceId) -> Option<Envelope<M>>;

    /// Blocking receive on `at`'s inbox; `None` on timeout.
    fn recv_timeout(&self, at: PlaceId, timeout: Duration) -> Option<Envelope<M>>;

    /// Pushes any buffered outbound traffic of `at` to the wire. Only
    /// aggregating layers ([`crate::coalesce::CoalescingTransport`]) hold
    /// traffic back, so the default is a no-op. Engines call this when a
    /// worker goes idle and before snapshot barriers.
    fn flush(&self, at: PlaceId) {
        let _ = at;
    }

    /// Tears the transport down (flush, close connections). Idempotent;
    /// the default does nothing, which is right for in-process channels.
    fn shutdown(&self) {}
}

/// The in-process transport: every place's inbox lives in this struct,
/// sends are typed channel handoffs priced by the [`NetworkModel`].
pub struct LocalTransport<M> {
    boxes: Vec<Mailbox<M>>,
    sender: MailboxSender<M>,
    liveness: LivenessBoard,
}

impl<M: Send> LocalTransport<M> {
    /// Builds a transport with one mailbox per place of `topo`.
    pub fn new(
        topo: Topology,
        net: NetworkModel,
        liveness: LivenessBoard,
        stats: StatsBoard,
    ) -> Self {
        let (boxes, sender) = post_office(topo, net, liveness.clone(), stats);
        LocalTransport {
            boxes,
            sender,
            liveness,
        }
    }
}

impl<M: Send> Transport<M> for LocalTransport<M> {
    fn num_places(&self) -> u16 {
        self.boxes.len() as u16
    }

    fn liveness(&self) -> &LivenessBoard {
        &self.liveness
    }

    fn send(
        &self,
        src: PlaceId,
        dst: PlaceId,
        msg: M,
        wire_bytes: usize,
    ) -> Result<(), DeadPlaceError> {
        self.sender.send(src, dst, msg, wire_bytes)
    }

    fn try_recv(&self, at: PlaceId) -> Option<Envelope<M>> {
        self.boxes[at.index()].try_recv()
    }

    fn recv_timeout(&self, at: PlaceId, timeout: Duration) -> Option<Envelope<M>> {
        self.boxes[at.index()].recv_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn local(places: u16) -> LocalTransport<u32> {
        LocalTransport::new(
            Topology::flat(places),
            NetworkModel::tianhe_like(),
            LivenessBoard::new(places),
            StatsBoard::new(places),
        )
    }

    #[test]
    fn local_transport_routes_like_the_post_office() {
        let t = local(3);
        t.send(PlaceId(0), PlaceId(2), 7, 4).unwrap();
        let env = t.try_recv(PlaceId(2)).unwrap();
        assert_eq!((env.src, env.msg), (PlaceId(0), 7));
        assert!(t.try_recv(PlaceId(1)).is_none());
    }

    #[test]
    fn local_transport_respects_liveness() {
        let t = local(2);
        t.liveness().kill(PlaceId(1));
        assert_eq!(
            t.send(PlaceId(0), PlaceId(1), 1, 4),
            Err(DeadPlaceError { place: PlaceId(1) })
        );
    }

    #[test]
    fn usable_as_trait_object() {
        let t: Arc<dyn Transport<u32>> = Arc::new(local(2));
        t.send(PlaceId(0), PlaceId(1), 9, 4).unwrap();
        assert_eq!(t.num_places(), 2);
        let env = t.recv_timeout(PlaceId(1), Duration::from_secs(1)).unwrap();
        assert_eq!(env.msg, 9);
        t.shutdown(); // default no-op
    }
}

//! *Local* collective operations over the places of a runtime.
//!
//! X10 programs express global phases with `finish`+`at`; DPX10's
//! recovery protocol, for instance, is "executed in parallel on all
//! alive places" and then resumes globally (§VI-D). These helpers give
//! that shape a first-class API on the [`Runtime`]: a barrier across the
//! live places, a gather of per-place values, and an all-reduce.
//!
//! These are **in-process** helpers: the runtime's places share one
//! address space, so the "collective" is closures plus shared memory —
//! no wire frame exists or is priced. Where places really are separated
//! by a transport, the tree-scheduled plane in [`crate::collectives`]
//! carries the same verbs as wire frames; the socket engine routes its
//! control phases through that plane.
//!
//! Dead places are skipped, so collectives keep working mid-recovery.

use std::sync::Arc;

use dpx10_sync::Mutex;

use crate::place::PlaceId;
use crate::runtime::Runtime;

impl Runtime {
    /// Runs `f` once on every live place and blocks until all complete —
    /// a barrier with a payload.
    pub fn barrier_with<F>(&self, f: F)
    where
        F: Fn(PlaceId) + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        self.broadcast(move |p| {
            let f = f.clone();
            move || f(p)
        });
    }

    /// Evaluates `f` on every live place and returns the `(place, value)`
    /// pairs in place order.
    pub fn gather<R, F>(&self, f: F) -> Vec<(PlaceId, R)>
    where
        R: Send + 'static,
        F: Fn(PlaceId) -> R + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let results: Arc<Mutex<Vec<(PlaceId, R)>>> = Arc::new(Mutex::new(Vec::new()));
        self.broadcast(|p| {
            let f = f.clone();
            let results = results.clone();
            move || {
                let v = f(p);
                results.lock().push((p, v));
            }
        });
        let mut out = Arc::try_unwrap(results)
            .unwrap_or_else(|arc| Mutex::new(std::mem::take(&mut *arc.lock())))
            .into_inner();
        out.sort_by_key(|(p, _)| *p);
        out
    }

    /// Evaluates `f` on every live place and folds the values with
    /// `combine` — an all-reduce returning the result to the caller.
    /// Returns `None` when no place is alive (impossible while place 0
    /// lives, but total anyway).
    pub fn all_reduce<R, F, C>(&self, f: F, combine: C) -> Option<R>
    where
        R: Send + 'static,
        F: Fn(PlaceId) -> R + Send + Sync + 'static,
        C: FnMut(R, R) -> R,
    {
        let mut combine = combine;
        self.gather(f)
            .into_iter()
            .map(|(_, v)| v)
            .reduce(&mut combine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::RuntimeConfig;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn gather_returns_place_ordered_values() {
        let rt = Runtime::new(RuntimeConfig::flat(4));
        let got = rt.gather(|p| p.0 as u64 * 10);
        assert_eq!(
            got,
            vec![
                (PlaceId(0), 0),
                (PlaceId(1), 10),
                (PlaceId(2), 20),
                (PlaceId(3), 30)
            ]
        );
    }

    #[test]
    fn all_reduce_sums() {
        let rt = Runtime::new(RuntimeConfig::flat(5));
        let sum = rt.all_reduce(|p| p.0 as u64, |a, b| a + b).unwrap();
        assert_eq!(sum, 10); // 0+1+2+3+4
    }

    #[test]
    fn collectives_skip_dead_places() {
        let rt = Runtime::new(RuntimeConfig::flat(4));
        rt.kill_place(PlaceId(2));
        let got = rt.gather(|p| p.0);
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|(p, _)| *p != PlaceId(2)));
        let max = rt.all_reduce(|p| p.0, |a, b| a.max(b)).unwrap();
        assert_eq!(max, 3);
    }

    #[test]
    fn barrier_runs_everywhere_once() {
        let rt = Runtime::new(RuntimeConfig::flat(3));
        let hits = Arc::new([AtomicU32::new(0), AtomicU32::new(0), AtomicU32::new(0)]);
        let hits2 = hits.clone();
        rt.barrier_with(move |p| {
            hits2[p.index()].fetch_add(1, Ordering::Relaxed);
        });
        for h in hits.iter() {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }
}

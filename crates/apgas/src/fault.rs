//! Place liveness and failure reporting.
//!
//! Resilient X10 reports a node failure as a `DeadPlaceException` (paper
//! §VI-D). Here a failure is *injected* — a test or experiment kills a
//! place on the [`LivenessBoard`] — and every subsequent interaction with
//! that place surfaces a [`DeadPlaceError`], which the DPX10 engine
//! catches to enter recovery mode.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::place::PlaceId;

/// Error raised when code touches a dead place, mirroring X10's
/// `DeadPlaceException`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeadPlaceError {
    /// The dead place.
    pub place: PlaceId,
}

impl fmt::Display for DeadPlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} is dead", self.place)
    }
}

impl std::error::Error for DeadPlaceError {}

/// Shared per-place liveness flags.
///
/// Cloning shares the underlying flags (the board is an `Arc` internally),
/// so every component of a runtime observes the same failures.
#[derive(Clone)]
pub struct LivenessBoard {
    alive: Arc<[AtomicBool]>,
}

impl LivenessBoard {
    /// Creates a board with `places` live places.
    pub fn new(places: u16) -> Self {
        let alive: Vec<AtomicBool> = (0..places).map(|_| AtomicBool::new(true)).collect();
        LivenessBoard {
            alive: alive.into(),
        }
    }

    /// Number of places tracked (alive or dead).
    pub fn num_places(&self) -> u16 {
        self.alive.len() as u16
    }

    /// Whether `place` is alive.
    #[inline]
    pub fn is_alive(&self, place: PlaceId) -> bool {
        self.alive[place.index()].load(Ordering::Acquire)
    }

    /// Returns `Ok(())` if alive, `Err(DeadPlaceError)` otherwise.
    #[inline]
    pub fn check(&self, place: PlaceId) -> Result<(), DeadPlaceError> {
        if self.is_alive(place) {
            Ok(())
        } else {
            Err(DeadPlaceError { place })
        }
    }

    /// Kills `place`. Idempotent. Returns whether the place was alive.
    ///
    /// # Panics
    ///
    /// Panics when asked to kill place 0 — Resilient X10 aborts the whole
    /// computation if Place 0 dies (paper §VI-D quotes this as a
    /// limitation of the X10 runtime), so the reproduction forbids it the
    /// same way.
    pub fn kill(&self, place: PlaceId) -> bool {
        assert!(
            place != PlaceId::ZERO,
            "Resilient X10 limitation: place 0 must not die"
        );
        self.alive[place.index()].swap(false, Ordering::AcqRel)
    }

    /// Marks `place` dead without the place-0 restriction of
    /// [`kill`](Self::kill). Returns whether the place was alive.
    ///
    /// This is the entry point for *detected* failures (a transport
    /// noticing a closed connection) as opposed to *injected* ones: a
    /// transport thread must never panic, and on a multi-process backend
    /// even place 0 can be observed dead by its peers — the observer then
    /// shuts down, mirroring Resilient X10 aborting when place 0 dies.
    pub fn mark_dead(&self, place: PlaceId) -> bool {
        self.alive[place.index()].swap(false, Ordering::AcqRel)
    }

    /// Ids of the places still alive, in order.
    pub fn alive_places(&self) -> Vec<PlaceId> {
        (0..self.alive.len() as u16)
            .map(PlaceId)
            .filter(|&p| self.is_alive(p))
            .collect()
    }

    /// Number of live places.
    pub fn alive_count(&self) -> u16 {
        self.alive_places().len() as u16
    }
}

impl fmt::Debug for LivenessBoard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LivenessBoard")
            .field("alive", &self.alive_places())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_alive_initially() {
        let board = LivenessBoard::new(4);
        assert_eq!(board.alive_count(), 4);
        assert!(board.check(PlaceId(3)).is_ok());
    }

    #[test]
    fn kill_is_observed_and_idempotent() {
        let board = LivenessBoard::new(4);
        assert!(board.kill(PlaceId(2)));
        assert!(!board.kill(PlaceId(2)), "second kill reports already-dead");
        assert!(!board.is_alive(PlaceId(2)));
        assert_eq!(
            board.check(PlaceId(2)),
            Err(DeadPlaceError { place: PlaceId(2) })
        );
        assert_eq!(
            board.alive_places(),
            vec![PlaceId(0), PlaceId(1), PlaceId(3)]
        );
    }

    #[test]
    #[should_panic(expected = "place 0")]
    fn place_zero_immortal() {
        LivenessBoard::new(2).kill(PlaceId::ZERO);
    }

    #[test]
    fn clones_share_state() {
        let a = LivenessBoard::new(3);
        let b = a.clone();
        a.kill(PlaceId(1));
        assert!(!b.is_alive(PlaceId(1)));
    }

    #[test]
    fn error_displays_place() {
        let e = DeadPlaceError { place: PlaceId(7) };
        assert_eq!(e.to_string(), "place 7 is dead");
    }
}

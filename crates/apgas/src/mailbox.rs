//! Typed inter-place messaging.
//!
//! Each place owns one [`Mailbox`] (its inbox); a shared cloneable
//! [`MailboxSender`] routes messages to any place. Sends are byte-priced
//! through the [`NetworkModel`] and refused with [`DeadPlaceError`] when
//! the destination has been killed — the hook the fault-tolerance path
//! (paper §VI-D) is built on.

use std::time::Duration;

use dpx10_sync::channel::{self, Receiver, RecvTimeoutError, Sender};

use crate::fault::{DeadPlaceError, LivenessBoard};
use crate::network::NetworkModel;
use crate::place::{PlaceId, Topology};
use crate::stats::StatsBoard;

/// A routed message with its source place.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sending place.
    pub src: PlaceId,
    /// Payload.
    pub msg: M,
}

/// The inbox of one place.
pub struct Mailbox<M> {
    place: PlaceId,
    rx: Receiver<Envelope<M>>,
}

impl<M> Mailbox<M> {
    /// The owning place.
    pub fn place(&self) -> PlaceId {
        self.place
    }

    /// A second handle onto the same inbox: the worker threads of one
    /// place share its mailbox, each message consumed by exactly one.
    pub fn clone_handle(&self) -> Mailbox<M> {
        Mailbox {
            place: self.place,
            rx: self.rx.clone(),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        self.rx.try_recv().ok()
    }

    /// Blocking receive with timeout; `None` on timeout or if all senders
    /// are gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Envelope<M>> {
        match self.rx.recv_timeout(timeout) {
            Ok(env) => Some(env),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Drains everything currently queued.
    pub fn drain(&self, out: &mut Vec<Envelope<M>>) {
        while let Ok(env) = self.rx.try_recv() {
            out.push(env);
        }
    }

    /// Number of queued messages (approximate under concurrency).
    pub fn len(&self) -> usize {
        self.rx.len()
    }

    /// Whether the inbox is currently empty.
    pub fn is_empty(&self) -> bool {
        self.rx.is_empty()
    }
}

/// Cloneable routing handle to every place's inbox.
pub struct MailboxSender<M> {
    topo: Topology,
    net: NetworkModel,
    liveness: LivenessBoard,
    stats: StatsBoard,
    txs: std::sync::Arc<[Sender<Envelope<M>>]>,
}

impl<M> Clone for MailboxSender<M> {
    fn clone(&self) -> Self {
        MailboxSender {
            topo: self.topo,
            net: self.net,
            liveness: self.liveness.clone(),
            stats: self.stats.clone(),
            txs: self.txs.clone(),
        }
    }
}

impl<M: Send> MailboxSender<M> {
    /// Sends `msg` (`bytes` on the wire) from `src` to `dst`.
    ///
    /// Accounts the transfer on `src`'s stats and returns
    /// `Err(DeadPlaceError)` if `dst` is dead. A send to the local place
    /// is free and always succeeds while the place lives.
    pub fn send(
        &self,
        src: PlaceId,
        dst: PlaceId,
        msg: M,
        bytes: usize,
    ) -> Result<(), DeadPlaceError> {
        self.liveness.check(dst)?;
        if src != dst {
            let cost = self.net.transfer_time(&self.topo, src, dst, bytes);
            self.stats.place(src).on_send(bytes, cost);
        }
        // The receiver half lives as long as the runtime, so a send only
        // fails if the whole runtime is tearing down; map that to the
        // destination being gone.
        self.txs[dst.index()]
            .send(Envelope { src, msg })
            .map_err(|_| DeadPlaceError { place: dst })
    }

    /// The topology this sender routes over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }
}

/// Builds one mailbox per place plus the shared sender.
pub fn post_office<M: Send>(
    topo: Topology,
    net: NetworkModel,
    liveness: LivenessBoard,
    stats: StatsBoard,
) -> (Vec<Mailbox<M>>, MailboxSender<M>) {
    let n = topo.num_places();
    let mut boxes = Vec::with_capacity(n as usize);
    let mut txs = Vec::with_capacity(n as usize);
    for p in 0..n {
        let (tx, rx) = channel::unbounded();
        txs.push(tx);
        boxes.push(Mailbox {
            place: PlaceId(p),
            rx,
        });
    }
    let sender = MailboxSender {
        topo,
        net,
        liveness,
        stats,
        txs: txs.into(),
    };
    (boxes, sender)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(
        places: u16,
    ) -> (
        Vec<Mailbox<u32>>,
        MailboxSender<u32>,
        LivenessBoard,
        StatsBoard,
    ) {
        let topo = Topology::flat(places);
        let liveness = LivenessBoard::new(places);
        let stats = StatsBoard::new(places);
        let (boxes, sender) = post_office(
            topo,
            NetworkModel::tianhe_like(),
            liveness.clone(),
            stats.clone(),
        );
        (boxes, sender, liveness, stats)
    }

    #[test]
    fn routed_delivery() {
        let (boxes, sender, _, _) = setup(3);
        sender.send(PlaceId(0), PlaceId(2), 42, 4).unwrap();
        let env = boxes[2].try_recv().unwrap();
        assert_eq!(env.src, PlaceId(0));
        assert_eq!(env.msg, 42);
        assert!(boxes[1].try_recv().is_none());
    }

    #[test]
    fn send_to_dead_place_fails() {
        let (boxes, sender, liveness, _) = setup(3);
        liveness.kill(PlaceId(1));
        let err = sender.send(PlaceId(0), PlaceId(1), 7, 4).unwrap_err();
        assert_eq!(err.place, PlaceId(1));
        assert!(boxes[1].try_recv().is_none());
    }

    #[test]
    fn remote_sends_are_accounted_local_are_not() {
        let (_boxes, sender, _, stats) = setup(2);
        sender.send(PlaceId(0), PlaceId(1), 1, 100).unwrap();
        sender.send(PlaceId(0), PlaceId(0), 2, 100).unwrap();
        let snap = stats.snapshot();
        assert_eq!(snap.messages_sent, 1);
        assert_eq!(snap.bytes_sent, 100);
        assert!(snap.net_time > Duration::ZERO);
    }

    #[test]
    fn drain_collects_in_order() {
        let (boxes, sender, _, _) = setup(2);
        for k in 0..5 {
            sender.send(PlaceId(0), PlaceId(1), k, 4).unwrap();
        }
        let mut out = Vec::new();
        boxes[1].drain(&mut out);
        let got: Vec<u32> = out.into_iter().map(|e| e.msg).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert!(boxes[1].is_empty());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (boxes, _sender, _, _) = setup(1);
        assert!(boxes[0].recv_timeout(Duration::from_millis(5)).is_none());
    }

    #[test]
    fn cross_thread_delivery() {
        let (mut boxes, sender, _, _) = setup(2);
        let inbox1 = boxes.remove(1);
        let t = std::thread::spawn(move || {
            inbox1
                .recv_timeout(Duration::from_secs(5))
                .expect("message arrives")
                .msg
        });
        sender.send(PlaceId(0), PlaceId(1), 99, 4).unwrap();
        assert_eq!(t.join().unwrap(), 99);
    }
}

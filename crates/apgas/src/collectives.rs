//! The wire-level collective communication plane.
//!
//! Global phases of a distributed run — releasing every place from an
//! epoch, folding per-place progress into one decision, distributing
//! restored chunks after a recovery — fan out O(P) point-to-point frames
//! from place 0 when done naively. This module gives those phases a
//! *tree*: a [`CollectiveSchedule`] derives binomial parent/child edges
//! from the live roster view (rank order), and the verb drivers
//! ([`broadcast`], [`scatter`], [`reduce`], [`allreduce`]) move
//! [`CollFrame`]s along those edges over any [`Transport`], repairing the
//! tree around dead places by adopting their subtrees.
//!
//! Two integrations exist:
//!
//! * the in-process [`crate::Runtime`] keeps its local shared-memory
//!   collectives (`crate::collective`) — no wire exists there, so the
//!   tree would only add hops;
//! * the socket engine in `dpx10-core` carries the same schedule on its
//!   control protocol: `Stop`/`Abort` broadcast hops, a folded progress
//!   reduce (the epoch barrier), and the `Resume` scatter that
//!   distributes restored chunks by subtree.
//!
//! The binomial shape is the classic one: relative to the root, rank `r`
//! parents to `r` with its highest set bit cleared, and its children are
//! `r + 2^k` for every `2^k` past `r`'s highest bit. Depth is
//! `⌈log2 P⌉`, and every rank is reached exactly once (property-tested
//! in `tests/collective_properties.rs`, including arbitrary dead-place
//! subsets).

use std::collections::HashMap;
use std::time::{Duration, Instant};

use crate::codec::Codec;
use crate::place::PlaceId;
use crate::transport::Transport;

/// Binomial-tree parent/child edges over `n` ranks, rooted anywhere.
///
/// Ranks are indices into the caller's live-roster view (slot order), so
/// a schedule built from the survivors of an epoch automatically excludes
/// places that died *before* the epoch; places that die *during* a
/// collective are handled by the repair path of the verbs (dead children
/// are skipped and their subtrees adopted by the sender).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CollectiveSchedule {
    n: usize,
    root: usize,
}

impl CollectiveSchedule {
    /// Builds the schedule for `n` ranks rooted at `root`.
    ///
    /// # Panics
    /// When `n == 0` or `root >= n`.
    pub fn new(n: usize, root: usize) -> Self {
        assert!(n > 0, "a schedule needs at least one rank");
        assert!(root < n, "root {root} out of range for {n} ranks");
        CollectiveSchedule { n, root }
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.n
    }

    /// The root rank.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Rank rotated so the root becomes 0.
    #[inline]
    fn rel(&self, rank: usize) -> usize {
        (rank + self.n - self.root) % self.n
    }

    /// Inverse of [`rel`](Self::rel).
    #[inline]
    fn abs(&self, rel: usize) -> usize {
        (rel + self.root) % self.n
    }

    /// The parent edge of `rank`; `None` for the root.
    pub fn parent(&self, rank: usize) -> Option<usize> {
        let r = self.rel(rank);
        if r == 0 {
            return None;
        }
        let msb = usize::BITS - 1 - r.leading_zeros();
        Some(self.abs(r ^ (1 << msb)))
    }

    /// The child edges of `rank`, in ascending relative order.
    pub fn children(&self, rank: usize) -> Vec<usize> {
        let r = self.rel(rank);
        let mut out = Vec::new();
        // The smallest power of two strictly above r (1 when r == 0).
        let mut k = 1usize;
        while k <= r {
            k <<= 1;
        }
        while r + k < self.n {
            out.push(self.abs(r + k));
            k <<= 1;
        }
        out
    }

    /// Tree depth bound: `⌈log2 n⌉`.
    pub fn depth(&self) -> u32 {
        usize::BITS - (self.n - 1).leading_zeros()
    }

    /// `rank` plus all its descendants (the ranks a scatter hop to
    /// `rank` must carry payloads for).
    pub fn subtree(&self, rank: usize) -> Vec<usize> {
        let mut out = vec![rank];
        let mut k = 0;
        while k < out.len() {
            let r = out[k];
            out.extend(self.children(r));
            k += 1;
        }
        out
    }

    /// The ranks a broadcast hop from `rank` must send to when the ranks
    /// for which `is_dead` holds cannot receive: dead children are
    /// skipped and their own children adopted, recursively — the tree
    /// repair that lets a collective complete mid-recovery.
    pub fn relay_targets(&self, rank: usize, is_dead: impl Fn(usize) -> bool) -> Vec<usize> {
        let mut out = Vec::new();
        let mut work = self.children(rank);
        while let Some(c) = work.pop() {
            if is_dead(c) {
                work.extend(self.children(c));
            } else {
                out.push(c);
            }
        }
        out.sort_unstable();
        out
    }

    /// The nearest live ancestor of `rank` — where a reduce contribution
    /// goes when the direct parent died. Falls back to the root (whose
    /// death ends the run anyway, mirroring Resilient X10's place-0
    /// limitation). `None` for the root itself.
    pub fn live_parent(&self, rank: usize, is_dead: impl Fn(usize) -> bool) -> Option<usize> {
        let mut p = self.parent(rank)?;
        while p != self.root && is_dead(p) {
            p = self.parent(p).unwrap_or(self.root);
        }
        Some(p)
    }
}

/// Max-merges monotone per-place counters — the fold of the progress
/// reduce. Commutative, associative and idempotent, so the folded result
/// is independent of arrival order and tolerant of re-sent frames.
pub fn fold_counts(into: &mut HashMap<u16, u64>, counts: &[(u16, u64)]) {
    for &(p, n) in counts {
        let e = into.entry(p).or_insert(0);
        *e = (*e).max(n);
    }
}

/// One hop of a collective, as it travels the wire.
///
/// Payload vectors go through the [`Codec`] `Vec` path, which rejects
/// hostile length claims, and an unknown tag decodes to `None` (the
/// transport marks the sender dead — same policy as every other frame).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CollFrame<T> {
    /// Root → subtree: the broadcast value, relayed hop by hop.
    Bcast(T),
    /// Parent → child: the `(rank, part)` payloads of the receiving
    /// subtree; the receiver keeps its own part and splits the rest
    /// among its children.
    Scatter(Vec<(u16, T)>),
    /// Child → parent: the `(rank, contribution)` entries collected from
    /// the sender's subtree. Entry sets union order-independently.
    Reduce(Vec<(u16, T)>),
}

impl<T: Codec> Codec for CollFrame<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            CollFrame::Bcast(v) => {
                buf.push(0);
                v.encode(buf);
            }
            CollFrame::Scatter(parts) => {
                buf.push(1);
                parts.encode(buf);
            }
            CollFrame::Reduce(entries) => {
                buf.push(2);
                entries.encode(buf);
            }
        }
    }

    fn decode(src: &mut &[u8]) -> Option<Self> {
        match u8::decode(src)? {
            0 => Some(CollFrame::Bcast(T::decode(src)?)),
            1 => Some(CollFrame::Scatter(Vec::decode(src)?)),
            2 => Some(CollFrame::Reduce(Vec::decode(src)?)),
            _ => None,
        }
    }

    fn wire_size(&self) -> usize {
        1 + match self {
            CollFrame::Bcast(v) => v.wire_size(),
            CollFrame::Scatter(parts) => parts.wire_size(),
            CollFrame::Reduce(entries) => entries.wire_size(),
        }
    }
}

/// A value collectives can move: encodable, clonable for multi-child
/// relays, and sendable across the transport.
pub trait CollValue: Codec + Clone + Send {}
impl<T: Codec + Clone + Send> CollValue for T {}

fn send_frame<T: CollValue>(
    tr: &dyn Transport<CollFrame<T>>,
    ranks: &[PlaceId],
    from: usize,
    to: usize,
    frame: CollFrame<T>,
) -> bool {
    if !tr.liveness().is_alive(ranks[to]) {
        return false;
    }
    let bytes = frame.wire_size();
    tr.send(ranks[from], ranks[to], frame, bytes).is_ok()
}

/// Relays a broadcast value to this rank's children, adopting the
/// subtrees of children that are dead or unreachable.
fn relay_bcast<T: CollValue>(
    tr: &dyn Transport<CollFrame<T>>,
    sched: &CollectiveSchedule,
    ranks: &[PlaceId],
    me: usize,
    value: &T,
) {
    let mut work = sched.children(me);
    while let Some(c) = work.pop() {
        if !send_frame(tr, ranks, me, c, CollFrame::Bcast(value.clone())) {
            work.extend(sched.children(c)); // repair: adopt the subtree
        }
    }
}

/// One place's participation in a tree broadcast from the schedule root.
///
/// The root passes `Some(value)`; every other rank passes `None` and
/// blocks up to `timeout` for the hop from its (effective) parent.
/// Returns the broadcast value, or `None` when it never arrived — the
/// sender repaired around us, or the run is tearing down.
pub fn broadcast<T: CollValue>(
    tr: &dyn Transport<CollFrame<T>>,
    sched: &CollectiveSchedule,
    ranks: &[PlaceId],
    me: usize,
    value: Option<T>,
    timeout: Duration,
) -> Option<T> {
    let v = match value {
        Some(v) => v,
        None => {
            let deadline = Instant::now() + timeout;
            loop {
                let left = deadline.checked_duration_since(Instant::now())?;
                match tr.recv_timeout(ranks[me], left)?.msg {
                    CollFrame::Bcast(v) => break v,
                    _ => continue, // a straggler from another verb
                }
            }
        }
    };
    relay_bcast(tr, sched, ranks, me, &v);
    Some(v)
}

/// Relays scatter parts: each child receives exactly the payloads of its
/// subtree; dead children's subtrees are adopted (their parts re-split
/// among the adopter's remaining live descendants' hops).
fn relay_scatter<T: CollValue>(
    tr: &dyn Transport<CollFrame<T>>,
    sched: &CollectiveSchedule,
    ranks: &[PlaceId],
    me: usize,
    parts: &[(u16, T)],
) {
    let mut work = sched.children(me);
    while let Some(c) = work.pop() {
        let sub: Vec<(u16, T)> = sched
            .subtree(c)
            .into_iter()
            .filter_map(|r| {
                parts
                    .iter()
                    .find(|(k, _)| *k as usize == r)
                    .map(|(k, v)| (*k, v.clone()))
            })
            .collect();
        if !send_frame(tr, ranks, me, c, CollFrame::Scatter(sub)) {
            work.extend(sched.children(c));
        }
    }
}

/// One place's participation in a tree scatter from the schedule root.
///
/// The root passes every rank's `(rank, part)` payload; each rank
/// returns its own part (or `None` on timeout / no part addressed to
/// it). Hops carry only the receiving subtree's payloads, so no link
/// ever moves the full payload set except the root's own edges.
pub fn scatter<T: CollValue>(
    tr: &dyn Transport<CollFrame<T>>,
    sched: &CollectiveSchedule,
    ranks: &[PlaceId],
    me: usize,
    parts: Option<Vec<(u16, T)>>,
    timeout: Duration,
) -> Option<T> {
    let parts = match parts {
        Some(p) => p,
        None => {
            let deadline = Instant::now() + timeout;
            loop {
                let left = deadline.checked_duration_since(Instant::now())?;
                match tr.recv_timeout(ranks[me], left)?.msg {
                    CollFrame::Scatter(p) => break p,
                    _ => continue,
                }
            }
        }
    };
    relay_scatter(tr, sched, ranks, me, &parts);
    parts
        .into_iter()
        .find(|(k, _)| *k as usize == me)
        .map(|(_, v)| v)
}

/// One place's contribution to a tree reduce toward the schedule root.
///
/// Every live rank calls with its own contribution. Non-root ranks
/// collect their live subtree's entries (descendants whose parent died
/// re-route to their nearest live ancestor, which may be us or someone
/// above us), forward the union to their own nearest live ancestor, and
/// return `None`. The root returns every `(rank, contribution)` entry
/// that reached it before `timeout` — fold them however the caller
/// likes; the entry set is independent of arrival order.
pub fn reduce<T: CollValue>(
    tr: &dyn Transport<CollFrame<T>>,
    sched: &CollectiveSchedule,
    ranks: &[PlaceId],
    me: usize,
    mine: T,
    timeout: Duration,
) -> Option<Vec<(u16, T)>> {
    let entries = collect_subtree(tr, sched, ranks, me, mine, timeout, &mut None);
    conclude_reduce(tr, sched, ranks, me, entries)
}

/// The shared collection loop of [`reduce`] and [`allreduce`]: gathers
/// this rank's subtree entries until covered or timed out. A `Bcast`
/// frame arriving early (allreduce's second phase overtaking a slow
/// subtree) is stashed in `early` instead of dropped.
fn collect_subtree<T: CollValue>(
    tr: &dyn Transport<CollFrame<T>>,
    sched: &CollectiveSchedule,
    ranks: &[PlaceId],
    me: usize,
    mine: T,
    timeout: Duration,
    early: &mut Option<T>,
) -> Vec<(u16, T)> {
    let mut have: HashMap<u16, T> = HashMap::new();
    have.insert(me as u16, mine);
    let deadline = Instant::now() + timeout;
    loop {
        // Expect the currently-live members of our subtree; ranks that
        // die mid-collective stop being waited for on the next pass.
        let covered = sched
            .subtree(me)
            .into_iter()
            .all(|r| have.contains_key(&(r as u16)) || !tr.liveness().is_alive(ranks[r]));
        if covered {
            break;
        }
        let Some(left) = deadline.checked_duration_since(Instant::now()) else {
            break;
        };
        let Some(env) = tr.recv_timeout(ranks[me], left) else {
            break;
        };
        match env.msg {
            CollFrame::Reduce(es) => {
                for (k, v) in es {
                    have.entry(k).or_insert(v);
                }
            }
            CollFrame::Bcast(v) => *early = Some(v),
            CollFrame::Scatter(_) => {}
        }
    }
    let mut out: Vec<(u16, T)> = have.into_iter().collect();
    out.sort_by_key(|(k, _)| *k);
    out
}

/// Sends collected entries to the nearest live ancestor (non-root) or
/// returns them (root).
fn conclude_reduce<T: CollValue>(
    tr: &dyn Transport<CollFrame<T>>,
    sched: &CollectiveSchedule,
    ranks: &[PlaceId],
    me: usize,
    entries: Vec<(u16, T)>,
) -> Option<Vec<(u16, T)>> {
    let is_dead = |r: usize| !tr.liveness().is_alive(ranks[r]);
    match sched.live_parent(me, is_dead) {
        None => Some(entries),
        Some(p) => {
            send_frame(tr, ranks, me, p, CollFrame::Reduce(entries));
            None
        }
    }
}

/// A reduce whose folded result is broadcast back to every rank: each
/// live rank contributes `mine` and receives `fold` applied over the
/// contributions that reached the root (in rank order, so the fold need
/// not be commutative — only the *collection* is order-free).
pub fn allreduce<T: CollValue>(
    tr: &dyn Transport<CollFrame<T>>,
    sched: &CollectiveSchedule,
    ranks: &[PlaceId],
    me: usize,
    mine: T,
    fold: impl Fn(T, T) -> T,
    timeout: Duration,
) -> Option<T> {
    let mut early = None;
    let entries = collect_subtree(tr, sched, ranks, me, mine, timeout, &mut early);
    match conclude_reduce(tr, sched, ranks, me, entries) {
        Some(entries) => {
            // Root: fold in rank order and broadcast the result.
            let folded = entries.into_iter().map(|(_, v)| v).reduce(&fold)?;
            relay_bcast(tr, sched, ranks, me, &folded);
            Some(folded)
        }
        None => match early {
            Some(v) => {
                relay_bcast(tr, sched, ranks, me, &v);
                Some(v)
            }
            None => broadcast(tr, sched, ranks, me, None, timeout),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_exact, encode_to_vec};
    use crate::fault::LivenessBoard;
    use crate::network::NetworkModel;
    use crate::place::Topology;
    use crate::stats::StatsBoard;
    use crate::transport::LocalTransport;
    use std::sync::Arc;

    const TICK: Duration = Duration::from_secs(5);

    #[test]
    fn binomial_shape_of_six() {
        let s = CollectiveSchedule::new(6, 0);
        assert_eq!(s.children(0), vec![1, 2, 4]);
        assert_eq!(s.children(1), vec![3, 5]);
        assert_eq!(s.children(2), Vec::<usize>::new());
        assert_eq!(s.parent(0), None);
        assert_eq!(s.parent(5), Some(1));
        assert_eq!(s.parent(4), Some(0));
        assert_eq!(s.depth(), 3);
        let mut sub = s.subtree(1);
        sub.sort_unstable();
        assert_eq!(sub, vec![1, 3, 5]);
    }

    #[test]
    fn rotation_moves_the_root() {
        let s = CollectiveSchedule::new(4, 2);
        assert_eq!(s.parent(2), None);
        // Relative ranks: 2→0, 3→1, 0→2, 1→3.
        assert_eq!(s.children(2), vec![3, 0]);
        assert_eq!(s.children(3), vec![1]);
        assert_eq!(s.parent(1), Some(3));
    }

    #[test]
    fn repair_adopts_dead_subtrees() {
        let s = CollectiveSchedule::new(8, 0);
        // With children 2 and 4 of the root dead, the root's hop list
        // must swap them for their own children.
        let dead = |r: usize| r == 2 || r == 4;
        let targets = s.relay_targets(0, dead);
        let mut expect = s.children(2);
        expect.extend(s.children(4));
        expect.push(1);
        expect.sort_unstable();
        assert_eq!(targets, expect);
        // A dead parent re-routes contributions to the live ancestor.
        assert_eq!(s.live_parent(6, dead), Some(0));
        assert_eq!(s.live_parent(0, dead), None);
    }

    #[test]
    fn fold_counts_is_idempotent_max_merge() {
        let mut m = HashMap::new();
        fold_counts(&mut m, &[(0, 5), (1, 7)]);
        fold_counts(&mut m, &[(0, 3), (1, 9), (2, 1)]);
        fold_counts(&mut m, &[(1, 9)]);
        assert_eq!(m[&0], 5);
        assert_eq!(m[&1], 9);
        assert_eq!(m[&2], 1);
    }

    #[test]
    fn coll_frame_codec_round_trips_and_guards() {
        let frames: Vec<CollFrame<u64>> = vec![
            CollFrame::Bcast(42),
            CollFrame::Scatter(vec![(0, 1), (3, 9)]),
            CollFrame::Reduce(vec![(1, 100)]),
        ];
        for f in frames {
            let buf = encode_to_vec(&f);
            assert_eq!(buf.len(), f.wire_size());
            assert_eq!(decode_exact::<CollFrame<u64>>(&buf), Some(f));
        }
        // Unknown tag and hostile length claims are rejected, never
        // panicked on.
        assert!(decode_exact::<CollFrame<u64>>(&[9]).is_none());
        let mut hostile = vec![1u8]; // Scatter
        hostile.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_exact::<CollFrame<u64>>(&hostile).is_none());
    }

    fn mesh(places: u16) -> (Arc<LocalTransport<CollFrame<u64>>>, Vec<PlaceId>) {
        let tr = Arc::new(LocalTransport::new(
            Topology::flat(places),
            NetworkModel::tianhe_like(),
            LivenessBoard::new(places),
            StatsBoard::new(places),
        ));
        (tr, (0..places).map(PlaceId).collect())
    }

    fn run_all<F>(places: u16, f: F) -> Vec<Option<u64>>
    where
        F: Fn(Arc<LocalTransport<CollFrame<u64>>>, Vec<PlaceId>, usize) -> Option<u64>
            + Send
            + Sync
            + 'static,
    {
        let (tr, ranks) = mesh(places);
        let f = Arc::new(f);
        let handles: Vec<_> = (0..places as usize)
            .map(|me| {
                let (tr, ranks, f) = (tr.clone(), ranks.clone(), f.clone());
                std::thread::spawn(move || f(tr, ranks, me))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn broadcast_reaches_every_place() {
        let got = run_all(7, |tr, ranks, me| {
            let s = CollectiveSchedule::new(ranks.len(), 0);
            broadcast(tr.as_ref(), &s, &ranks, me, (me == 0).then_some(99), TICK)
        });
        assert_eq!(got, vec![Some(99); 7]);
    }

    #[test]
    fn scatter_delivers_each_rank_its_part() {
        let got = run_all(6, |tr, ranks, me| {
            let s = CollectiveSchedule::new(ranks.len(), 0);
            let parts = (me == 0).then(|| (0..6u16).map(|r| (r, u64::from(r) * 10)).collect());
            scatter(tr.as_ref(), &s, &ranks, me, parts, TICK)
        });
        let expect: Vec<Option<u64>> = (0..6).map(|r| Some(r * 10)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn reduce_collects_all_contributions_at_root() {
        let got = run_all(5, |tr, ranks, me| {
            let s = CollectiveSchedule::new(ranks.len(), 0);
            reduce(tr.as_ref(), &s, &ranks, me, me as u64 + 1, TICK)
                .map(|entries| entries.into_iter().map(|(_, v)| v).sum())
        });
        assert_eq!(got[0], Some(1 + 2 + 3 + 4 + 5));
        assert!(got[1..].iter().all(Option::is_none));
    }

    #[test]
    fn allreduce_agrees_everywhere() {
        let got = run_all(6, |tr, ranks, me| {
            let s = CollectiveSchedule::new(ranks.len(), 0);
            allreduce(tr.as_ref(), &s, &ranks, me, me as u64, |a, b| a + b, TICK)
        });
        assert_eq!(got, vec![Some(1 + 2 + 3 + 4 + 5); 6]);
    }

    #[test]
    fn broadcast_repairs_around_a_dead_child() {
        // Kill rank 1 (a mid-tree node with children 3 and 5 at n=6)
        // before the collective starts: the root must adopt its subtree.
        let got = run_all(6, |tr, ranks, me| {
            if me == 1 {
                return None; // the corpse does not participate
            }
            if me == 0 {
                tr.liveness().kill(ranks[1]);
            }
            let s = CollectiveSchedule::new(ranks.len(), 0);
            broadcast(tr.as_ref(), &s, &ranks, me, (me == 0).then_some(7), TICK)
        });
        assert_eq!(got[0], Some(7));
        for r in [2usize, 3, 4, 5] {
            assert_eq!(got[r], Some(7), "rank {r} missed the repaired hop");
        }
    }

    #[test]
    fn reduce_routes_around_a_dead_parent() {
        // Rank 1 is dead; ranks 3 and 5 (its children) must re-route
        // their contributions to the live ancestor, the root.
        let got = run_all(6, |tr, ranks, me| {
            if me == 1 {
                return None;
            }
            if me == 0 {
                tr.liveness().kill(ranks[1]);
            }
            let s = CollectiveSchedule::new(ranks.len(), 0);
            reduce(tr.as_ref(), &s, &ranks, me, 1u64, TICK)
                .map(|entries| entries.into_iter().map(|(_, v)| v).sum())
        });
        assert_eq!(got[0], Some(5), "five live contributions reach the root");
    }
}

//! Seeded chaos injection: fault plans, network perturbation and the
//! deterministic RNG that drives both.
//!
//! The paper's recovery claims (§VI-D) are only as strong as the
//! schedules they were tested under, so this module provides the
//! building blocks for *systematic* schedule exploration:
//!
//! * [`ChaosRng`] — a SplitMix64 generator; every chaos decision in the
//!   repo derives from one `u64` seed through it, so a failing run is
//!   reproducible from the seed alone.
//! * [`ChaosPlan`] — the fault-plan DSL: kill place *P* at progress
//!   fraction *F* or after wall/virtual time *T*, perturb transport
//!   messages (delay/reorder/duplicate/drop), flap heartbeats, and
//!   shake the threaded engine's ready-queue order. Plans are plain
//!   data: they can be generated from a seed, printed, and *shrunk* to
//!   a minimal counterexample.
//! * [`ChaosTransport`] — a [`Transport`] decorator that applies the
//!   plan's [`NetChaos`] to a real transport. Duplication is gated by a
//!   caller-supplied classifier because not every message type is
//!   idempotent (the engines' `Done` decrements are not).
//!
//! Delay is implemented on the *receive* side: a delayed envelope is
//! parked in a per-place held queue and released a few `try_recv` ticks
//! later, which both delays it and reorders it past later messages —
//! one mechanism covers the paper-relevant perturbations while keeping
//! the send path (and its byte accounting) untouched.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::fault::{DeadPlaceError, LivenessBoard};
use crate::mailbox::Envelope;
use crate::place::PlaceId;
use crate::transport::Transport;

/// SplitMix64: tiny, fast, and statistically fine for fault injection.
/// The same algorithm as the proptest stand-in's `TestRng`, so one seed
/// convention covers the whole repo.
#[derive(Clone, Debug)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        ChaosRng { state: seed }
    }

    /// A statistically independent generator for substream `stream`
    /// (per-worker, per-link, …) of the same root seed.
    pub fn fork(&self, stream: u64) -> Self {
        ChaosRng::new(mix(self.state ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.state)
    }

    /// Uniform value in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.unit() < p
    }
}

/// Finalizer from SplitMix64 — full avalanche, so nearby seeds give
/// unrelated streams.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// When a planned kill fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KillTrigger {
    /// After this fraction of the DAG's vertices have finished
    /// (clamped to `[0, 1]`; progress-based kills are comparable across
    /// backends, so differential plans use these).
    Progress(f64),
    /// After this much engine time — virtual time in the simulator,
    /// wall-clock time in the threaded engine.
    After(Duration),
}

/// Kill one place at a trigger point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KillSpec {
    /// The victim (never place 0 — Resilient X10's documented limit).
    pub place: PlaceId,
    /// When to kill it.
    pub trigger: KillTrigger,
}

/// Message-level perturbation probabilities for [`ChaosTransport`].
///
/// All probabilities are per message. `drop_prob` is OFF in generated
/// plans: a silently dropped engine message stalls the run (the stall
/// watchdog converts it into an error), so drops only make sense in
/// targeted tests that expect the stall.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetChaos {
    /// Probability a received message is parked for a few ticks.
    pub delay_prob: f64,
    /// Maximum parking duration, in receive ticks.
    pub max_delay_ticks: u64,
    /// Probability a sent message is sent twice (only applied when the
    /// transport's `dup_safe` classifier approves the message).
    pub dup_prob: f64,
    /// Probability a sent message is silently discarded.
    pub drop_prob: f64,
}

impl NetChaos {
    /// No perturbation at all.
    pub fn off() -> Self {
        NetChaos {
            delay_prob: 0.0,
            max_delay_ticks: 0,
            dup_prob: 0.0,
            drop_prob: 0.0,
        }
    }

    /// Whether every probability is zero.
    pub fn is_off(&self) -> bool {
        self.delay_prob <= 0.0 && self.dup_prob <= 0.0 && self.drop_prob <= 0.0
    }
}

impl Default for NetChaos {
    fn default() -> Self {
        NetChaos::off()
    }
}

/// Suppress heartbeats on the socket mesh for `pause` — long enough and
/// peers declare the flapping place dead; shorter and the run must ride
/// it out. Either way the detection path gets exercised.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HeartbeatFlap {
    /// How long outgoing heartbeats stay suppressed.
    pub pause: Duration,
}

/// A complete seeded chaos plan: what to kill, when, and how to perturb
/// the transport underneath the run.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosPlan {
    /// Root seed every in-plan random decision derives from.
    pub seed: u64,
    /// Places to kill, in trigger order of declaration.
    pub kills: Vec<KillSpec>,
    /// Transport perturbation.
    pub net: NetChaos,
    /// Heartbeat suppression on the socket mesh.
    pub flap: Option<HeartbeatFlap>,
    /// Shake the threaded engine's worker schedules (ready-pop order,
    /// drain budgets, yield injection) from `seed`.
    pub shake: bool,
}

impl ChaosPlan {
    /// A plan that perturbs nothing — the differential baseline.
    pub fn quiet(seed: u64) -> Self {
        ChaosPlan {
            seed,
            kills: Vec::new(),
            net: NetChaos::off(),
            flap: None,
            shake: false,
        }
    }

    /// Derives a random plan for a run over `places` places,
    /// deterministically from `seed`. Generated kills use
    /// [`KillTrigger::Progress`] so the plan means the same thing on
    /// every backend; `drop_prob` stays zero (see [`NetChaos`]).
    pub fn generate(seed: u64, places: u16) -> Self {
        let mut rng = ChaosRng::new(seed).fork(0x504C_414E); // "PLAN"
        let mut kills = Vec::new();
        if places > 1 {
            let max_kills = u64::from(places - 1).min(2);
            let n_kills = rng.below(max_kills + 1);
            let mut victims: Vec<u16> = (1..places).collect();
            for _ in 0..n_kills {
                let pick = rng.below(victims.len() as u64) as usize;
                let victim = victims.swap_remove(pick);
                // Quantized so the plan prints round and reproduces exactly.
                let frac = 0.05 + (rng.below(19) as f64) * 0.05;
                kills.push(KillSpec {
                    place: PlaceId(victim),
                    trigger: KillTrigger::Progress(frac),
                });
            }
        }
        let net = if rng.chance(0.6) {
            NetChaos {
                delay_prob: 0.05 + rng.unit() * 0.25,
                max_delay_ticks: 1 + rng.below(8),
                dup_prob: if rng.chance(0.5) {
                    rng.unit() * 0.1
                } else {
                    0.0
                },
                drop_prob: 0.0,
            }
        } else {
            NetChaos::off()
        };
        let flap = rng.chance(0.3).then(|| HeartbeatFlap {
            pause: Duration::from_millis(200 + rng.below(400)),
        });
        ChaosPlan {
            seed,
            kills,
            net,
            flap,
            shake: rng.chance(0.8),
        }
    }

    /// Whether the plan perturbs anything at all.
    pub fn is_quiet(&self) -> bool {
        self.kills.is_empty() && self.net.is_off() && self.flap.is_none() && !self.shake
    }

    /// One-step-simpler candidate plans, most aggressive simplification
    /// first. A shrinking loop re-runs each candidate and recurses into
    /// the first one that still fails, ending at a (locally) minimal
    /// counterexample.
    pub fn shrink(&self) -> Vec<ChaosPlan> {
        let mut out = Vec::new();
        if !self.net.is_off() {
            let mut p = self.clone();
            p.net = NetChaos::off();
            out.push(p);
        }
        if self.flap.is_some() {
            let mut p = self.clone();
            p.flap = None;
            out.push(p);
        }
        if self.shake {
            let mut p = self.clone();
            p.shake = false;
            out.push(p);
        }
        for k in (0..self.kills.len()).rev() {
            let mut p = self.clone();
            p.kills.remove(k);
            out.push(p);
        }
        out
    }
}

/// One elastic-mesh verb, fired at a progress fraction of the run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ElasticVerb {
    /// A new place joins the mesh (lowest vacant slot; ignored at
    /// capacity).
    Join,
    /// `place` drains gracefully: relocates every chunk it holds, then
    /// leaves. Never place 0.
    Drain {
        /// The draining place.
        place: PlaceId,
    },
    /// One chunk relocates to the least-loaded member. `slot` is taken
    /// modulo the engine's slot count, so plans are portable across
    /// shapes.
    Relocate {
        /// The slot to move (modulo the slot count).
        slot: u16,
    },
    /// `place` dies abruptly — no drain, no relocation: the recovery
    /// (recompute) path. Never place 0.
    Kill {
        /// The victim.
        place: PlaceId,
    },
}

/// An [`ElasticVerb`] with its trigger point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ElasticEvent {
    /// Progress fraction (finished vertices / total) at which the verb
    /// fires, in `[0, 1]`.
    pub at: f64,
    /// What happens.
    pub verb: ElasticVerb,
}

/// A seeded schedule of membership churn for an elastic-mesh run:
/// joins, graceful drains, chunk relocations and abrupt kills, each
/// pinned to a progress fraction. The elastic differential oracle runs
/// the same workload with and without the plan and demands identical
/// results.
#[derive(Clone, Debug, PartialEq)]
pub struct ElasticPlan {
    /// Root seed the plan was generated from.
    pub seed: u64,
    /// Events in firing order (ascending `at`).
    pub events: Vec<ElasticEvent>,
}

impl ElasticPlan {
    /// A plan with no membership churn at all.
    pub fn quiet(seed: u64) -> Self {
        ElasticPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Derives a random elastic plan for a mesh founded with `founding`
    /// places and capped at `capacity` slots, deterministically from
    /// `seed`. The generator tracks simulated membership so every drain
    /// and kill names a place that is actually a member when the event
    /// fires, the mesh never shrinks below two members, and place 0 is
    /// never drained or killed.
    pub fn generate(seed: u64, founding: u16, capacity: u16) -> Self {
        let capacity = capacity.max(founding);
        let mut rng = ChaosRng::new(seed).fork(0x454C_5354); // "ELST"
        let mut members: Vec<u16> = (0..founding).collect();
        let mut next_id = founding;
        let mut events = Vec::new();
        let n_events = rng.below(6);
        for k in 0..n_events {
            // Events fire in generated order: quantized, strictly
            // increasing fractions.
            let at = ((k + 1) as f64) * 0.9 / (n_events + 1) as f64;
            let at = (at * 20.0).round() / 20.0;
            let can_join = next_id < capacity;
            let removable: Vec<u16> = members.iter().copied().filter(|p| *p != 0).collect();
            let can_remove = members.len() > 2 && !removable.is_empty();
            let verb = match rng.below(4) {
                0 if can_join => {
                    members.push(next_id);
                    next_id += 1;
                    ElasticVerb::Join
                }
                1 if can_remove => {
                    let victim = removable[rng.below(removable.len() as u64) as usize];
                    members.retain(|p| *p != victim);
                    ElasticVerb::Drain {
                        place: PlaceId(victim),
                    }
                }
                2 if can_remove => {
                    let victim = removable[rng.below(removable.len() as u64) as usize];
                    members.retain(|p| *p != victim);
                    ElasticVerb::Kill {
                        place: PlaceId(victim),
                    }
                }
                _ => ElasticVerb::Relocate {
                    slot: rng.below(64) as u16,
                },
            };
            events.push(ElasticEvent { at, verb });
        }
        ElasticPlan { seed, events }
    }

    /// Whether the plan does nothing.
    pub fn is_quiet(&self) -> bool {
        self.events.is_empty()
    }

    /// One-step-simpler candidates: each drops one event (later events
    /// first). Dropping a `Join` can leave a later drain or kill naming
    /// a place that never joins; elastic engines treat verbs naming
    /// non-members as no-ops, so every candidate stays runnable.
    pub fn shrink(&self) -> Vec<ElasticPlan> {
        (0..self.events.len())
            .rev()
            .map(|k| {
                let mut p = self.clone();
                p.events.remove(k);
                p
            })
            .collect()
    }
}

impl fmt::Display for ElasticPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={:#018x}", self.seed)?;
        for ev in &self.events {
            match ev.verb {
                ElasticVerb::Join => write!(f, " join@{:.0}%", ev.at * 100.0)?,
                ElasticVerb::Drain { place } => {
                    write!(f, " drain(p{}@{:.0}%)", place.0, ev.at * 100.0)?
                }
                ElasticVerb::Relocate { slot } => {
                    write!(f, " relocate(s{slot}@{:.0}%)", ev.at * 100.0)?
                }
                ElasticVerb::Kill { place } => {
                    write!(f, " kill(p{}@{:.0}%)", place.0, ev.at * 100.0)?
                }
            }
        }
        if self.is_quiet() {
            write!(f, " quiet")?;
        }
        Ok(())
    }
}

impl fmt::Display for ChaosPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={:#018x}", self.seed)?;
        for k in &self.kills {
            match k.trigger {
                KillTrigger::Progress(frac) => {
                    write!(f, " kill(p{}@{:.0}%)", k.place.0, frac * 100.0)?
                }
                KillTrigger::After(t) => write!(f, " kill(p{}@{:?})", k.place.0, t)?,
            }
        }
        if !self.net.is_off() {
            write!(
                f,
                " net(delay={:.2}x{} dup={:.2} drop={:.2})",
                self.net.delay_prob,
                self.net.max_delay_ticks,
                self.net.dup_prob,
                self.net.drop_prob
            )?;
        }
        if let Some(flap) = &self.flap {
            write!(f, " flap({:?})", flap.pause)?;
        }
        if self.shake {
            write!(f, " shake")?;
        }
        if self.is_quiet() {
            write!(f, " quiet")?;
        }
        Ok(())
    }
}

/// Decides whether duplicating a given message is semantically safe.
/// The engines' `Done` decrements are not idempotent, so `dpx10-core`
/// passes `|m| !matches!(m, Msg::Done { .. })`.
pub type DupSafe<M> = Arc<dyn Fn(&M) -> bool + Send + Sync>;

/// Counters of perturbations actually applied — lets tests assert the
/// chaos was live, and failure reports say what the run endured.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosCounters {
    /// Messages parked on the receive side.
    pub delayed: u64,
    /// Messages sent twice.
    pub duplicated: u64,
    /// Messages silently discarded.
    pub dropped: u64,
}

struct Held<M> {
    due: u64,
    seq: u64,
    env: Envelope<M>,
}

/// A [`Transport`] decorator applying [`NetChaos`] to an inner
/// transport. Every perturbation decision is a pure function of
/// `(plan seed, place, per-place sequence number)`, so a fixed message
/// order replays the exact same perturbations.
pub struct ChaosTransport<M: Send> {
    inner: Arc<dyn Transport<M>>,
    net: NetChaos,
    seed: u64,
    dup_safe: DupSafe<M>,
    /// Per-destination receive tick (each `try_recv` advances it).
    ticks: Vec<AtomicU64>,
    /// Per-destination receive sequence (counts delivered envelopes).
    recv_seq: Vec<AtomicU64>,
    /// Per-source send sequence.
    send_seq: Vec<AtomicU64>,
    held: Vec<Mutex<Vec<Held<M>>>>,
    delayed: AtomicU64,
    duplicated: AtomicU64,
    dropped: AtomicU64,
}

impl<M: Send + Clone> ChaosTransport<M> {
    /// Wraps `inner`, perturbing per `net` with decisions derived from
    /// `seed`. `dup_safe` vetoes duplication of non-idempotent messages.
    pub fn new(
        inner: Arc<dyn Transport<M>>,
        net: NetChaos,
        seed: u64,
        dup_safe: DupSafe<M>,
    ) -> Self {
        let places = inner.num_places() as usize;
        ChaosTransport {
            inner,
            net,
            seed,
            dup_safe,
            ticks: (0..places).map(|_| AtomicU64::new(0)).collect(),
            recv_seq: (0..places).map(|_| AtomicU64::new(0)).collect(),
            send_seq: (0..places).map(|_| AtomicU64::new(0)).collect(),
            held: (0..places).map(|_| Mutex::new(Vec::new())).collect(),
            delayed: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// How many perturbations fired so far.
    pub fn counters(&self) -> ChaosCounters {
        ChaosCounters {
            delayed: self.delayed.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }

    fn decision_rng(&self, stream: u64, place: PlaceId, seq: u64) -> ChaosRng {
        ChaosRng::new(self.seed)
            .fork(stream)
            .fork(u64::from(place.0))
            .fork(seq)
    }

    /// Pops the most-overdue held envelope whose due tick has passed
    /// (or, with `force`, the earliest held envelope regardless).
    fn pop_held(&self, at: PlaceId, tick: u64, force: bool) -> Option<Envelope<M>> {
        let mut held = self.held[at.index()].lock().unwrap();
        let idx = held
            .iter()
            .enumerate()
            .filter(|(_, h)| force || h.due <= tick)
            .min_by_key(|(_, h)| (h.due, h.seq))
            .map(|(i, _)| i)?;
        Some(held.swap_remove(idx).env)
    }

    /// Applies the receive-side delay decision to a fresh envelope:
    /// either parks it (returning `None`) or passes it through.
    fn admit(&self, at: PlaceId, tick: u64, env: Envelope<M>) -> Option<Envelope<M>> {
        if self.net.delay_prob <= 0.0 {
            return Some(env);
        }
        let seq = self.recv_seq[at.index()].fetch_add(1, Ordering::Relaxed);
        let mut rng = self.decision_rng(0x4445_4C41, at, seq); // "DELA"
        if rng.chance(self.net.delay_prob) {
            let due = tick + 1 + rng.below(self.net.max_delay_ticks.max(1));
            self.delayed.fetch_add(1, Ordering::Relaxed);
            self.held[at.index()]
                .lock()
                .unwrap()
                .push(Held { due, seq, env });
            None
        } else {
            Some(env)
        }
    }
}

impl<M: Send + Clone> Transport<M> for ChaosTransport<M> {
    fn num_places(&self) -> u16 {
        self.inner.num_places()
    }

    fn liveness(&self) -> &LivenessBoard {
        self.inner.liveness()
    }

    fn send(
        &self,
        src: PlaceId,
        dst: PlaceId,
        msg: M,
        wire_bytes: usize,
    ) -> Result<(), DeadPlaceError> {
        let seq = self.send_seq[src.index()].fetch_add(1, Ordering::Relaxed);
        let mut rng = self.decision_rng(0x5345_4E44, src, seq); // "SEND"
        if rng.chance(self.net.drop_prob) {
            // A drop still honours liveness, like a real lossy link to a
            // live peer.
            self.inner.liveness().check(dst)?;
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        let dup = rng.chance(self.net.dup_prob) && (self.dup_safe)(&msg);
        if dup {
            self.duplicated.fetch_add(1, Ordering::Relaxed);
            self.inner.send(src, dst, msg.clone(), wire_bytes)?;
        }
        self.inner.send(src, dst, msg, wire_bytes)
    }

    fn try_recv(&self, at: PlaceId) -> Option<Envelope<M>> {
        let tick = self.ticks[at.index()].fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(env) = self.pop_held(at, tick, false) {
            return Some(env);
        }
        loop {
            let env = self.inner.try_recv(at)?;
            if let Some(env) = self.admit(at, tick, env) {
                return Some(env);
            }
        }
    }

    fn recv_timeout(&self, at: PlaceId, timeout: Duration) -> Option<Envelope<M>> {
        if let Some(env) = self.try_recv(at) {
            return Some(env);
        }
        match self.inner.recv_timeout(at, timeout) {
            Some(env) => {
                let tick = self.ticks[at.index()].load(Ordering::Relaxed);
                match self.admit(at, tick, env) {
                    Some(env) => Some(env),
                    // The fresh envelope was parked; waiting out the
                    // timeout counts as time passing, so release the
                    // earliest held message instead of stalling.
                    None => self.pop_held(at, tick, true),
                }
            }
            // Nothing arrived within the timeout — any parked message is
            // overdue by now.
            None => self.pop_held(at, u64::MAX, true),
        }
    }

    fn shutdown(&self) {
        self.inner.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkModel;
    use crate::place::Topology;
    use crate::stats::StatsBoard;
    use crate::transport::LocalTransport;

    fn inner(places: u16) -> Arc<dyn Transport<u32>> {
        Arc::new(LocalTransport::new(
            Topology::flat(places),
            NetworkModel::free(),
            LivenessBoard::new(places),
            StatsBoard::new(places),
        ))
    }

    fn all_dup_safe() -> DupSafe<u32> {
        Arc::new(|_| true)
    }

    #[test]
    fn rng_is_deterministic_and_fork_streams_diverge() {
        let mut a = ChaosRng::new(42);
        let mut b = ChaosRng::new(42);
        let run: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        assert_eq!(run, (0..8).map(|_| b.next_u64()).collect::<Vec<_>>());
        let mut f0 = ChaosRng::new(42).fork(0);
        let mut f1 = ChaosRng::new(42).fork(1);
        assert_ne!(f0.next_u64(), f1.next_u64());
    }

    #[test]
    fn generated_plans_reproduce_and_respect_place_zero() {
        for seed in 0..200u64 {
            let p1 = ChaosPlan::generate(seed, 4);
            let p2 = ChaosPlan::generate(seed, 4);
            assert_eq!(p1, p2, "seed {seed} must reproduce");
            for k in &p1.kills {
                assert_ne!(k.place, PlaceId(0), "never kill place 0");
                assert!(k.place.0 < 4);
                match k.trigger {
                    KillTrigger::Progress(f) => assert!((0.0..=1.0).contains(&f)),
                    KillTrigger::After(_) => {}
                }
            }
            assert_eq!(p1.net.drop_prob, 0.0, "generated plans never drop");
            let victims: Vec<_> = p1.kills.iter().map(|k| k.place).collect();
            let mut dedup = victims.clone();
            dedup.dedup();
            assert_eq!(victims.len(), dedup.len(), "victims are distinct");
        }
    }

    #[test]
    fn single_place_plans_never_kill() {
        for seed in 0..50u64 {
            assert!(ChaosPlan::generate(seed, 1).kills.is_empty());
        }
    }

    #[test]
    fn shrink_strictly_simplifies() {
        let plan = ChaosPlan::generate(7, 4);
        for simpler in plan.shrink() {
            let fewer_kills = simpler.kills.len() < plan.kills.len();
            let less_net = plan.net != simpler.net && simpler.net.is_off();
            let less_flap = plan.flap.is_some() && simpler.flap.is_none();
            let less_shake = plan.shake && !simpler.shake;
            assert!(fewer_kills || less_net || less_flap || less_shake);
            assert_eq!(simpler.seed, plan.seed);
        }
        assert!(ChaosPlan::quiet(7).shrink().is_empty());
    }

    #[test]
    fn delay_reorders_but_loses_nothing() {
        let chaos = ChaosTransport::new(
            inner(2),
            NetChaos {
                delay_prob: 0.5,
                max_delay_ticks: 4,
                dup_prob: 0.0,
                drop_prob: 0.0,
            },
            99,
            all_dup_safe(),
        );
        for v in 0..100u32 {
            chaos.send(PlaceId(0), PlaceId(1), v, 4).unwrap();
        }
        let mut got = Vec::new();
        // Generous tick budget: every held message matures eventually.
        for _ in 0..10_000 {
            if let Some(env) = chaos.try_recv(PlaceId(1)) {
                got.push(env.msg);
                if got.len() == 100 {
                    break;
                }
            }
        }
        assert!(chaos.counters().delayed > 0, "chaos must have fired");
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>(), "nothing lost");
        assert_ne!(got, sorted, "some pair must arrive out of order");
    }

    #[test]
    fn recv_timeout_releases_parked_messages() {
        let chaos = ChaosTransport::new(
            inner(2),
            NetChaos {
                delay_prob: 1.0,
                max_delay_ticks: 1_000_000,
                dup_prob: 0.0,
                drop_prob: 0.0,
            },
            3,
            all_dup_safe(),
        );
        chaos.send(PlaceId(0), PlaceId(1), 42, 4).unwrap();
        // try_recv parks it (delay_prob = 1) with an absurd due tick...
        assert!(chaos.try_recv(PlaceId(1)).is_none());
        // ...but a blocking wait counts as time passing and frees it.
        let env = chaos
            .recv_timeout(PlaceId(1), Duration::from_millis(10))
            .expect("parked message released after timeout");
        assert_eq!(env.msg, 42);
    }

    #[test]
    fn duplication_respects_the_classifier() {
        let only_even: DupSafe<u32> = Arc::new(|m| m % 2 == 0);
        let chaos = ChaosTransport::new(
            inner(2),
            NetChaos {
                delay_prob: 0.0,
                max_delay_ticks: 0,
                dup_prob: 1.0,
                drop_prob: 0.0,
            },
            5,
            only_even,
        );
        chaos.send(PlaceId(0), PlaceId(1), 1, 4).unwrap(); // odd: no dup
        chaos.send(PlaceId(0), PlaceId(1), 2, 4).unwrap(); // even: dup
        let mut got = Vec::new();
        while let Some(env) = chaos.try_recv(PlaceId(1)) {
            got.push(env.msg);
        }
        assert_eq!(got, vec![1, 2, 2]);
        assert_eq!(chaos.counters().duplicated, 1);
    }

    #[test]
    fn drops_discard_but_honour_liveness() {
        let chaos = ChaosTransport::new(
            inner(2),
            NetChaos {
                delay_prob: 0.0,
                max_delay_ticks: 0,
                dup_prob: 0.0,
                drop_prob: 1.0,
            },
            5,
            all_dup_safe(),
        );
        chaos.send(PlaceId(0), PlaceId(1), 7, 4).unwrap();
        assert!(chaos.try_recv(PlaceId(1)).is_none());
        assert_eq!(chaos.counters().dropped, 1);
        chaos.liveness().kill(PlaceId(1));
        assert_eq!(
            chaos.send(PlaceId(0), PlaceId(1), 8, 4),
            Err(DeadPlaceError { place: PlaceId(1) })
        );
    }

    #[test]
    fn decisions_depend_only_on_seed_and_sequence() {
        let make = || {
            ChaosTransport::new(
                inner(2),
                NetChaos {
                    delay_prob: 0.4,
                    max_delay_ticks: 3,
                    dup_prob: 0.3,
                    drop_prob: 0.0,
                },
                1234,
                all_dup_safe(),
            )
        };
        let run = |t: &ChaosTransport<u32>| {
            for v in 0..50u32 {
                t.send(PlaceId(0), PlaceId(1), v, 4).unwrap();
            }
            let mut got = Vec::new();
            for _ in 0..5_000 {
                if let Some(env) = t.try_recv(PlaceId(1)) {
                    got.push(env.msg);
                }
            }
            (got, t.counters())
        };
        let (a, ca) = run(&make());
        let (b, cb) = run(&make());
        assert_eq!(a, b, "same seed + same order = same perturbations");
        assert_eq!(ca, cb);
    }

    #[test]
    fn elastic_plans_reproduce_and_stay_well_formed() {
        for seed in 0..200u64 {
            let p1 = ElasticPlan::generate(seed, 3, 5);
            let p2 = ElasticPlan::generate(seed, 3, 5);
            assert_eq!(p1, p2, "seed {seed} must reproduce");
            // Replay the membership the generator claims to track.
            let mut members: Vec<u16> = vec![0, 1, 2];
            let mut next_id = 3u16;
            let mut last_at = 0.0f64;
            for ev in &p1.events {
                assert!((0.0..=1.0).contains(&ev.at), "seed {seed}");
                assert!(ev.at >= last_at, "seed {seed}: events fire in order");
                last_at = ev.at;
                match ev.verb {
                    ElasticVerb::Join => {
                        assert!(next_id < 5, "seed {seed}: join past capacity");
                        members.push(next_id);
                        next_id += 1;
                    }
                    ElasticVerb::Drain { place } | ElasticVerb::Kill { place } => {
                        assert_ne!(place.0, 0, "seed {seed}: never remove place 0");
                        assert!(members.contains(&place.0), "seed {seed}: non-member");
                        assert!(members.len() > 2, "seed {seed}: mesh too small");
                        members.retain(|p| *p != place.0);
                    }
                    ElasticVerb::Relocate { .. } => {}
                }
            }
        }
    }

    #[test]
    fn elastic_seed_space_covers_every_verb() {
        let mut join = 0;
        let mut drain = 0;
        let mut relocate = 0;
        let mut kill = 0;
        for seed in 0..300u64 {
            for ev in ElasticPlan::generate(seed, 3, 6).events {
                match ev.verb {
                    ElasticVerb::Join => join += 1,
                    ElasticVerb::Drain { .. } => drain += 1,
                    ElasticVerb::Relocate { .. } => relocate += 1,
                    ElasticVerb::Kill { .. } => kill += 1,
                }
            }
        }
        assert!(
            join > 0 && drain > 0 && relocate > 0 && kill > 0,
            "verb mix too narrow: join={join} drain={drain} relocate={relocate} kill={kill}"
        );
    }

    #[test]
    fn elastic_shrink_strictly_simplifies_and_displays() {
        let plan = ElasticPlan {
            seed: 0xEE,
            events: vec![
                ElasticEvent {
                    at: 0.15,
                    verb: ElasticVerb::Join,
                },
                ElasticEvent {
                    at: 0.4,
                    verb: ElasticVerb::Relocate { slot: 3 },
                },
                ElasticEvent {
                    at: 0.6,
                    verb: ElasticVerb::Drain { place: PlaceId(2) },
                },
                ElasticEvent {
                    at: 0.8,
                    verb: ElasticVerb::Kill { place: PlaceId(1) },
                },
            ],
        };
        for simpler in plan.shrink() {
            assert_eq!(simpler.events.len(), plan.events.len() - 1);
            assert_eq!(simpler.seed, plan.seed);
        }
        assert_eq!(
            plan.to_string(),
            "seed=0x00000000000000ee join@15% relocate(s3@40%) drain(p2@60%) kill(p1@80%)"
        );
        assert!(ElasticPlan::quiet(1).shrink().is_empty());
        assert!(ElasticPlan::quiet(1).to_string().ends_with("quiet"));
    }

    #[test]
    fn display_is_compact_and_stable() {
        let plan = ChaosPlan {
            seed: 0xABCD,
            kills: vec![KillSpec {
                place: PlaceId(2),
                trigger: KillTrigger::Progress(0.5),
            }],
            net: NetChaos::off(),
            flap: None,
            shake: true,
        };
        assert_eq!(
            plan.to_string(),
            "seed=0x000000000000abcd kill(p2@50%) shake"
        );
        assert!(ChaosPlan::quiet(1).to_string().ends_with("quiet"));
    }
}

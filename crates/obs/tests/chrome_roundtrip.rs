//! Satellite: property test that Chrome-trace JSON serialization
//! round-trips — random events render to JSON, parse back, and match
//! on every exported field.

use proptest::prelude::*;

use dpx10_obs::chrome;
use dpx10_obs::{Event, EventKind, Trace};

fn kind_of(sel: u8) -> EventKind {
    EventKind::ALL[sel as usize % EventKind::ALL.len()]
}

proptest! {
    #[test]
    fn render_parse_round_trip(
        raw in proptest::collection::vec(
            ((any::<u32>(), 0u32..1_000_000), (0u16..8, 0u16..16), (any::<u8>(), any::<u64>())),
            0..64,
        )
    ) {
        let events: Vec<Event> = raw
            .iter()
            .map(|&((ts, dur), (place, worker), (sel, arg))| {
                let kind = kind_of(sel);
                Event {
                    ts_ns: u64::from(ts),
                    dur_ns: if kind.is_span() { u64::from(dur) } else { 0 },
                    place,
                    worker,
                    kind,
                    arg,
                }
            })
            .collect();
        let trace = Trace { events: events.clone(), dropped: 0 };

        let json = chrome::render(&trace);
        let parsed = chrome::parse(&json).unwrap();

        let body: Vec<_> = parsed.iter().filter(|e| e.ph != "M").collect();
        prop_assert_eq!(body.len(), events.len());
        for (orig, got) in events.iter().zip(body) {
            prop_assert_eq!(got.name.as_str(), orig.kind.name());
            prop_assert_eq!(got.kind(), Some(orig.kind));
            prop_assert_eq!(got.ph.as_str(), if orig.kind.is_span() { "X" } else { "i" });
            prop_assert_eq!(got.ts_ns, orig.ts_ns);
            prop_assert_eq!(got.dur_ns, orig.dur_ns);
            prop_assert_eq!(got.pid, orig.place);
            prop_assert_eq!(got.tid, orig.worker);
        }

        // One process_name metadata record per distinct place.
        let distinct_places = events
            .iter()
            .map(|e| e.place)
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        prop_assert_eq!(parsed.len() - body_len(&parsed), distinct_places);
    }
}

fn body_len(parsed: &[chrome::ChromeEvent]) -> usize {
    parsed.iter().filter(|e| e.ph != "M").count()
}

proptest! {
    #[test]
    fn nesting_check_accepts_recorder_shaped_traces(
        spans in proptest::collection::vec((0u64..1_000, 1u64..50, 0u16..4), 0..32)
    ) {
        // Serialize spans per track so they are disjoint by construction,
        // mimicking what a correct engine records.
        let mut cursor = std::collections::BTreeMap::new();
        let events: Vec<Event> = spans
            .iter()
            .map(|&(gap, dur, worker)| {
                let t = cursor.entry(worker).or_insert(0u64);
                let start = *t + gap;
                *t = start + dur;
                Event {
                    ts_ns: start,
                    dur_ns: dur,
                    place: 0,
                    worker,
                    kind: EventKind::VertexCompute,
                    arg: 0,
                }
            })
            .collect();
        let trace = Trace { events, dropped: 0 };
        let parsed = chrome::parse(&chrome::render(&trace)).unwrap();
        prop_assert!(chrome::check_nesting(&parsed).is_ok());
    }
}

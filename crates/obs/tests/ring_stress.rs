//! Satellite: stress coverage for the lock-free ring — concurrent
//! writers, wrap-around, and drop accounting.

use std::sync::Arc;

use dpx10_obs::{Event, EventKind, Recorder, Ring};

fn ev(writer: u16, seq: u64) -> Event {
    Event {
        ts_ns: seq,
        dur_ns: 0,
        place: 0,
        worker: writer,
        kind: EventKind::ReadyPop,
        arg: (u64::from(writer) << 32) | seq,
    }
}

#[test]
fn concurrent_writers_account_for_every_push() {
    let writers = 8usize;
    let per_writer = 20_000u64;
    let ring = Arc::new(Ring::new(1 << 12)); // far smaller than total pushes
    let handles: Vec<_> = (0..writers)
        .map(|w| {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..per_writer {
                    ring.push(ev(w as u16, i));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let total = writers as u64 * per_writer;
    assert_eq!(ring.pushed(), total);

    let (events, dropped) = ring.drain();
    // Conservation: every push is either read back or counted dropped.
    assert_eq!(events.len() as u64 + dropped, total);
    // The ring wrapped many times, so most pushes were dropped…
    assert!(dropped >= total - ring.capacity() as u64);
    // …but the surviving window is intact: no torn events (arg encodes
    // writer + sequence and must match the header fields).
    assert!(!events.is_empty());
    for e in &events {
        assert_eq!(e.kind, EventKind::ReadyPop);
        assert_eq!(e.arg >> 32, u64::from(e.worker));
        assert_eq!(e.arg & 0xffff_ffff, e.ts_ns);
    }
    // And per-writer order within the window is preserved: each
    // writer's surviving sequence numbers are strictly increasing.
    for w in 0..writers as u16 {
        let seqs: Vec<u64> = events
            .iter()
            .filter(|e| e.worker == w)
            .map(|e| e.ts_ns)
            .collect();
        assert!(seqs.windows(2).all(|p| p[0] < p[1]), "writer {w}: {seqs:?}");
    }
}

#[test]
fn wrap_around_keeps_exactly_the_latest_window() {
    let ring = Ring::new(64);
    let cap = ring.capacity() as u64;
    let total = cap * 5 + 3;
    for i in 0..total {
        ring.push(ev(0, i));
    }
    let (events, dropped) = ring.drain();
    assert_eq!(events.len() as u64, cap);
    assert_eq!(dropped, total - cap);
    let seqs: Vec<u64> = events.iter().map(|e| e.ts_ns).collect();
    assert_eq!(seqs, ((total - cap)..total).collect::<Vec<u64>>());
}

#[test]
fn recorder_drain_merges_places_under_concurrency() {
    let places = 4usize;
    let per_place = 5_000u64;
    let rec = Recorder::with_capacity(places, 1 << 13); // roomy: no drops
    let handles: Vec<_> = (0..places)
        .map(|p| {
            let rec = rec.clone();
            std::thread::spawn(move || {
                for i in 0..per_place {
                    rec.instant(p as u16, 0, EventKind::CacheHit, i, i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let trace = rec.drain();
    assert!(trace.complete());
    assert_eq!(trace.events.len() as u64, places as u64 * per_place);
    // drain() sorts by timestamp.
    assert!(trace.events.windows(2).all(|p| p[0].ts_ns <= p[1].ts_ns));
}

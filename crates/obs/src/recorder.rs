//! The [`Recorder`] handle engines carry, and the drained [`Trace`].
//!
//! A `Recorder` is a cheap clonable handle. Disabled (the default) it
//! holds no storage and every record call is a single branch on an
//! `Option` — the measured cost on the fig-10 simulator workload is
//! below the 2% budget documented in DESIGN.md. Enabled, it owns one
//! [`Ring`](crate::ring::Ring) per place and a monotonic anchor that
//! real engines stamp against; the simulator bypasses the anchor and
//! records its virtual clock through the same API, so both produce the
//! same schema.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::event::{Event, EventKind};
use crate::ring::Ring;

/// Default per-place ring capacity (events) when none is given.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

struct Inner {
    rings: Vec<Ring>,
    anchor: Instant,
    echo: AtomicBool,
}

/// A clonable flight-recorder handle. See the module docs.
#[derive(Clone)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => f.write_str("Recorder(disabled)"),
            Some(inner) => f
                .debug_struct("Recorder")
                .field("places", &inner.rings.len())
                .finish(),
        }
    }
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::disabled()
    }
}

impl Recorder {
    /// A recorder that records nothing; every call is a no-op branch.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// An enabled recorder with one [`DEFAULT_CAPACITY`]-event ring per
    /// place.
    pub fn new(places: usize) -> Recorder {
        Recorder::with_capacity(places, DEFAULT_CAPACITY)
    }

    /// An enabled recorder with `capacity` events of history per place.
    pub fn with_capacity(places: usize, capacity: usize) -> Recorder {
        let inner = Inner {
            rings: (0..places.max(1)).map(|_| Ring::new(capacity)).collect(),
            anchor: Instant::now(),
            echo: AtomicBool::new(false),
        };
        Recorder {
            inner: Some(Arc::new(inner)),
        }
    }

    /// Whether this recorder actually records. Engines may use this to
    /// skip timestamping work entirely.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// When set, every recorded event is also printed to stderr as a
    /// compact one-liner — the successor of the old
    /// `DPX10_SOCKET_TRACE=1` eprintln tracing.
    pub fn set_echo(&self, on: bool) {
        if let Some(inner) = &self.inner {
            inner.echo.store(on, Ordering::Relaxed);
        }
    }

    /// Nanoseconds since this recorder was created (0 when disabled).
    /// Real engines use this as their event clock.
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.anchor.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Records a span `[start_ns, end_ns]` on `place`/`worker`.
    pub fn span(
        &self,
        place: u16,
        worker: u16,
        kind: EventKind,
        start_ns: u64,
        end_ns: u64,
        arg: u64,
    ) {
        self.record(Event {
            ts_ns: start_ns,
            dur_ns: end_ns.saturating_sub(start_ns),
            place,
            worker,
            kind,
            arg,
        });
    }

    /// Records an instant at an explicit timestamp (the simulator's
    /// virtual clock, or a timestamp captured earlier).
    pub fn instant(&self, place: u16, worker: u16, kind: EventKind, ts_ns: u64, arg: u64) {
        self.record(Event {
            ts_ns,
            dur_ns: 0,
            place,
            worker,
            kind,
            arg,
        });
    }

    /// Records an instant stamped with [`now_ns`](Recorder::now_ns).
    pub fn instant_now(&self, place: u16, worker: u16, kind: EventKind, arg: u64) {
        if let Some(inner) = &self.inner {
            let ts = inner.anchor.elapsed().as_nanos() as u64;
            self.instant(place, worker, kind, ts, arg);
        }
    }

    fn record(&self, ev: Event) {
        let Some(inner) = &self.inner else { return };
        let Some(ring) = inner.rings.get(ev.place as usize) else {
            return; // out-of-range place: drop rather than misfile
        };
        ring.push(ev);
        if inner.echo.load(Ordering::Relaxed) {
            eprintln!(
                "[dpx10-obs] p{} w{} {} ts={}ns dur={}ns arg={}",
                ev.place,
                ev.worker,
                ev.kind.name(),
                ev.ts_ns,
                ev.dur_ns,
                ev.arg
            );
        }
    }

    /// Reads out everything recorded so far, merged across places and
    /// sorted by start time. Call at quiesce (end of run).
    pub fn drain(&self) -> Trace {
        let Some(inner) = &self.inner else {
            return Trace {
                events: Vec::new(),
                dropped: 0,
            };
        };
        let mut events = Vec::new();
        let mut dropped = 0u64;
        for ring in &inner.rings {
            let (evs, d) = ring.drain();
            events.extend(evs);
            dropped += d;
        }
        events.sort_by_key(|e| (e.ts_ns, e.place, e.worker, e.kind as u8));
        Trace { events, dropped }
    }
}

/// Everything a recorder captured: the surviving events plus how many
/// were lost to ring wrap-around.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Surviving events, sorted by start time.
    pub events: Vec<Event>,
    /// Events lost to wrap-around (the ring keeps the latest window).
    pub dropped: u64,
}

impl Trace {
    /// True when nothing was recorded and nothing dropped.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.dropped == 0
    }

    /// True when every recorded event survived (exporters and oracles
    /// can reason about completeness).
    pub fn complete(&self) -> bool {
        self.dropped == 0
    }

    /// Number of events of `kind` in the trace.
    pub fn count(&self, kind: EventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let r = Recorder::disabled();
        assert!(!r.enabled());
        r.instant_now(0, 0, EventKind::CacheHit, 0);
        r.span(0, 0, EventKind::VertexCompute, 0, 10, 0);
        assert_eq!(r.now_ns(), 0);
        assert!(r.drain().is_empty());
    }

    #[test]
    fn records_and_sorts_across_places() {
        let r = Recorder::with_capacity(2, 16);
        r.instant(1, 0, EventKind::CacheHit, 50, 0);
        r.span(0, 2, EventKind::VertexCompute, 10, 30, 7);
        let trace = r.drain();
        assert!(trace.complete());
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.events[0].ts_ns, 10);
        assert_eq!(trace.events[0].dur_ns, 20);
        assert_eq!(trace.events[1].place, 1);
        assert_eq!(trace.count(EventKind::VertexCompute), 1);
    }

    #[test]
    fn out_of_range_place_is_dropped_silently() {
        let r = Recorder::with_capacity(1, 16);
        r.instant(9, 0, EventKind::CacheHit, 0, 0);
        assert!(r.drain().is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let r = Recorder::with_capacity(1, 16);
        let r2 = r.clone();
        r2.instant(0, 0, EventKind::Fault, 5, 1);
        assert_eq!(r.drain().events.len(), 1);
    }
}

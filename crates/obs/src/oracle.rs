//! Trace-backed invariant checks used by the chaos harness.
//!
//! These run over raw [`Event`]s (before export). Both checks are only
//! meaningful on a *complete* trace (`Trace::complete()`); the harness
//! skips them when the ring wrapped, because a missing container span
//! could make well-nested children look orphaned.

use crate::event::{Event, EventKind};

/// Spans of one `(place, worker)` track as `(start, end, kind)`.
type TrackSpans = std::collections::BTreeMap<(u16, u16), Vec<(u64, u64, EventKind)>>;

/// Checks that spans nest properly per `(place, worker)` track: any two
/// spans on one track are disjoint or one contains the other. A partial
/// overlap means an engine attributed two overlapping computes to one
/// worker — a recording bug or a scheduling bug.
pub fn check_span_nesting(events: &[Event]) -> Result<(), String> {
    let mut tracks: TrackSpans = TrackSpans::new();
    for ev in events {
        if ev.kind.is_span() {
            tracks
                .entry((ev.place, ev.worker))
                .or_default()
                .push((ev.ts_ns, ev.end_ns(), ev.kind));
        }
    }
    for ((place, worker), mut spans) in tracks {
        spans.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut stack: Vec<u64> = Vec::new();
        for (start, end, kind) in spans {
            while stack.last().is_some_and(|&top| start >= top) {
                stack.pop();
            }
            if let Some(&top) = stack.last() {
                if end > top {
                    return Err(format!(
                        "place {place} worker {worker}: {} span [{start}ns, {end}ns] \
                         partially overlaps an enclosing span ending at {top}ns",
                        kind.name()
                    ));
                }
            }
            stack.push(end);
        }
    }
    Ok(())
}

/// Checks that the number of recovery spans in the trace matches the
/// number of recoveries the engine reported. `reported` is
/// `RunReport::recoveries.len()`.
pub fn check_recovery_count(events: &[Event], reported: usize) -> Result<(), String> {
    let traced = events
        .iter()
        .filter(|e| e.kind == EventKind::Recovery)
        .count();
    if traced == reported {
        Ok(())
    } else {
        Err(format!(
            "trace has {traced} recovery span(s) but the engine reported {reported}"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(place: u16, worker: u16, ts: u64, dur: u64) -> Event {
        Event {
            ts_ns: ts,
            dur_ns: dur,
            place,
            worker,
            kind: EventKind::VertexCompute,
            arg: 0,
        }
    }

    #[test]
    fn disjoint_and_nested_pass() {
        let events = vec![
            span(0, 0, 0, 10),
            span(0, 0, 20, 10),
            span(0, 1, 5, 100),
            span(0, 1, 10, 20), // nested inside the previous
            span(1, 0, 0, 1000),
        ];
        assert!(check_span_nesting(&events).is_ok());
    }

    #[test]
    fn partial_overlap_fails() {
        let events = vec![span(0, 3, 0, 100), span(0, 3, 50, 100)];
        let err = check_span_nesting(&events).unwrap_err();
        assert!(err.contains("place 0 worker 3"), "{err}");
    }

    #[test]
    fn recovery_count_matches() {
        let rec = Event {
            ts_ns: 0,
            dur_ns: 5,
            place: 0,
            worker: 0,
            kind: EventKind::Recovery,
            arg: 0,
        };
        assert!(check_recovery_count(&[rec], 1).is_ok());
        assert!(check_recovery_count(&[rec], 0).is_err());
        assert!(check_recovery_count(&[], 0).is_ok());
    }
}

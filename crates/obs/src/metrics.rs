//! A small metrics registry with Prometheus text export.
//!
//! Handles ([`Counter`], [`Gauge`], [`HistogramNs`]) are cheap atomics
//! that callers clone and bump from anywhere; the [`Registry`] only
//! takes its lock at registration and render time, never on the update
//! path. Rendering is deterministic: families sort by name, series by
//! label value, so diffs of two exports are meaningful.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding an arbitrary `f64`.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Exponential nanosecond bucket upper bounds: 1µs, 4µs, … ~1.07s.
/// Covers a fast vertex compute up to a slow recovery pass.
pub const NS_BUCKETS: [u64; 11] = [
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_000_000,
    4_000_000,
    16_000_000,
    64_000_000,
    256_000_000,
    1_073_741_824,
];

/// A histogram of durations in nanoseconds over [`NS_BUCKETS`].
#[derive(Clone, Debug)]
pub struct HistogramNs {
    counts: Arc<[AtomicU64; NS_BUCKETS.len() + 1]>,
    sum: Arc<AtomicU64>,
}

impl Default for HistogramNs {
    fn default() -> HistogramNs {
        HistogramNs {
            counts: Arc::new(std::array::from_fn(|_| AtomicU64::new(0))),
            sum: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl HistogramNs {
    /// Records one duration.
    pub fn observe(&self, ns: u64) {
        let idx = NS_BUCKETS
            .iter()
            .position(|&b| ns <= b)
            .unwrap_or(NS_BUCKETS.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed durations in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(HistogramNs),
}

struct Family {
    help: String,
    /// Rendered label string (e.g. `place="0"`) → the series.
    series: BTreeMap<String, Metric>,
}

/// A registry of named metric families. Clone freely; all clones share
/// the same families.
#[derive(Clone, Default)]
pub struct Registry {
    families: Arc<Mutex<BTreeMap<String, Family>>>,
}

fn label_key(labels: &[(&str, String)]) -> String {
    labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .collect::<Vec<_>>()
        .join(",")
}

impl Registry {
    /// A fresh empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn series(&self, name: &str, help: &str, labels: &[(&str, String)], fresh: Metric) -> Metric {
        let mut fams = self.families.lock().unwrap();
        let fam = fams.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        match fam.series.entry(label_key(labels)).or_insert(fresh) {
            Metric::Counter(c) => Metric::Counter(c.clone()),
            Metric::Gauge(g) => Metric::Gauge(g.clone()),
            Metric::Histogram(h) => Metric::Histogram(h.clone()),
        }
    }

    /// Registers (or finds) a counter series. Panics if `name` was
    /// registered as a different metric type.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, String)]) -> Counter {
        match self.series(name, help, labels, Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c,
            _ => panic!("metric {name} already registered with another type"),
        }
    }

    /// Registers (or finds) a gauge series. Panics if `name` was
    /// registered as a different metric type.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, String)]) -> Gauge {
        match self.series(name, help, labels, Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g,
            _ => panic!("metric {name} already registered with another type"),
        }
    }

    /// Registers (or finds) a nanosecond histogram series. Panics if
    /// `name` was registered as a different metric type.
    pub fn histogram_ns(&self, name: &str, help: &str, labels: &[(&str, String)]) -> HistogramNs {
        match self.series(
            name,
            help,
            labels,
            Metric::Histogram(HistogramNs::default()),
        ) {
            Metric::Histogram(h) => h,
            _ => panic!("metric {name} already registered with another type"),
        }
    }

    /// Renders the whole registry in the Prometheus text exposition
    /// format, deterministically ordered.
    pub fn render_prometheus(&self) -> String {
        let fams = self.families.lock().unwrap();
        let mut out = String::new();
        for (name, fam) in fams.iter() {
            let kind = match fam.series.values().next() {
                Some(Metric::Counter(_)) => "counter",
                Some(Metric::Gauge(_)) => "gauge",
                Some(Metric::Histogram(_)) => "histogram",
                None => continue,
            };
            out.push_str(&format!("# HELP {name} {}\n", fam.help));
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            for (labels, metric) in fam.series.iter() {
                let braced = |extra: &str| -> String {
                    match (labels.is_empty(), extra.is_empty()) {
                        (true, true) => String::new(),
                        (true, false) => format!("{{{extra}}}"),
                        (false, true) => format!("{{{labels}}}"),
                        (false, false) => format!("{{{labels},{extra}}}"),
                    }
                };
                match metric {
                    Metric::Counter(c) => {
                        out.push_str(&format!("{name}{} {}\n", braced(""), c.get()));
                    }
                    Metric::Gauge(g) => {
                        out.push_str(&format!("{name}{} {}\n", braced(""), g.get()));
                    }
                    Metric::Histogram(h) => {
                        let mut cumulative = 0u64;
                        for (i, bound) in NS_BUCKETS.iter().enumerate() {
                            cumulative += h.counts[i].load(Ordering::Relaxed);
                            out.push_str(&format!(
                                "{name}_bucket{} {cumulative}\n",
                                braced(&format!("le=\"{bound}\""))
                            ));
                        }
                        cumulative += h.counts[NS_BUCKETS.len()].load(Ordering::Relaxed);
                        out.push_str(&format!(
                            "{name}_bucket{} {cumulative}\n",
                            braced("le=\"+Inf\"")
                        ));
                        out.push_str(&format!("{name}_sum{} {}\n", braced(""), h.sum_ns()));
                        out.push_str(&format!("{name}_count{} {cumulative}\n", braced("")));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_render() {
        let reg = Registry::new();
        let c = reg.counter("dpx10_vertices_total", "vertices", &[]);
        c.add(41);
        c.inc();
        let g = reg.gauge("dpx10_wall_seconds", "wall", &[]);
        g.set(1.5);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE dpx10_vertices_total counter"));
        assert!(text.contains("dpx10_vertices_total 42\n"));
        assert!(text.contains("# TYPE dpx10_wall_seconds gauge"));
        assert!(text.contains("dpx10_wall_seconds 1.5\n"));
    }

    #[test]
    fn registering_twice_returns_same_series() {
        let reg = Registry::new();
        reg.counter("c", "h", &[]).add(1);
        reg.counter("c", "h", &[]).add(2);
        assert!(reg.render_prometheus().contains("c 3\n"));
    }

    #[test]
    fn labeled_series_sort_deterministically() {
        let reg = Registry::new();
        reg.counter("hits", "h", &[("place", "1".into())]).add(1);
        reg.counter("hits", "h", &[("place", "0".into())]).add(2);
        let text = reg.render_prometheus();
        let p0 = text.find("hits{place=\"0\"} 2").unwrap();
        let p1 = text.find("hits{place=\"1\"} 1").unwrap();
        assert!(p0 < p1);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let reg = Registry::new();
        let h = reg.histogram_ns("compute_ns", "compute", &[]);
        h.observe(500); // le 1000
        h.observe(2_000); // le 4000
        h.observe(10_000_000_000); // +Inf overflow
        let text = reg.render_prometheus();
        assert!(text.contains("compute_ns_bucket{le=\"1000\"} 1\n"));
        assert!(text.contains("compute_ns_bucket{le=\"4000\"} 2\n"));
        assert!(text.contains("compute_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("compute_ns_count 3\n"));
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_ns(), 10_000_002_500);
    }
}

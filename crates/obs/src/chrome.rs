//! Chrome `trace_event` JSON export and (for validation) import.
//!
//! The exporter writes the JSON Object Format (`{"traceEvents":[…]}`)
//! understood by `chrome://tracing` and Perfetto: one `"M"` metadata
//! record naming each place as a process, `"X"` complete events for
//! spans and `"i"` instants for everything else, with `pid` = place and
//! `tid` = worker. Timestamps are microseconds; nanosecond precision is
//! preserved by printing three decimals (`ns/1000 . ns%1000`), which is
//! exact, so a render → parse round-trip loses nothing.
//!
//! The importer is a small recursive-descent JSON parser — enough for
//! the CI smoke job and `dpx10 trace summarize` to validate a file
//! without external dependencies. It accepts both the object format and
//! a bare event array.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::Path;

use crate::event::EventKind;
use crate::recorder::Trace;

/// Formats nanoseconds as microseconds with exactly three decimals —
/// lossless for `u64` nanosecond inputs.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a drained [`Trace`] as Chrome `trace_event` JSON.
pub fn render(trace: &Trace) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |line: String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };

    let places: BTreeSet<u16> = trace.events.iter().map(|e| e.place).collect();
    for p in &places {
        push(
            format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{p},\"tid\":0,\
                 \"args\":{{\"name\":\"place {p}\"}}}}"
            ),
            &mut first,
        );
    }
    for ev in &trace.events {
        let name = escape(ev.kind.name());
        let line = if ev.kind.is_span() {
            format!(
                "{{\"ph\":\"X\",\"name\":\"{name}\",\"cat\":\"dpx10\",\
                 \"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"arg\":{}}}}}",
                ev.place,
                ev.worker,
                us(ev.ts_ns),
                us(ev.dur_ns),
                ev.arg
            )
        } else {
            format!(
                "{{\"ph\":\"i\",\"name\":\"{name}\",\"cat\":\"dpx10\",\"s\":\"t\",\
                 \"pid\":{},\"tid\":{},\"ts\":{},\"args\":{{\"arg\":{}}}}}",
                ev.place,
                ev.worker,
                us(ev.ts_ns),
                ev.arg
            )
        };
        push(line, &mut first);
    }
    let _ = write!(
        out,
        "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{{\"dropped_events\":{}}}}}",
        trace.dropped
    );
    out
}

/// Renders and writes a trace to `path`.
pub fn write(path: &Path, trace: &Trace) -> std::io::Result<()> {
    std::fs::write(path, render(trace))
}

/// One event read back out of a Chrome-trace JSON file.
#[derive(Clone, Debug, PartialEq)]
pub struct ChromeEvent {
    /// Event name (for recorder-produced files, an
    /// [`EventKind::name`]).
    pub name: String,
    /// Phase: `"X"`, `"i"`, `"M"`, ….
    pub ph: String,
    /// Start time in nanoseconds (`ts` µs × 1000, rounded).
    pub ts_ns: u64,
    /// Duration in nanoseconds (0 when absent).
    pub dur_ns: u64,
    /// Process id (place).
    pub pid: u16,
    /// Thread id (worker).
    pub tid: u16,
}

impl ChromeEvent {
    /// The [`EventKind`] this event's name maps to, if any.
    pub fn kind(&self) -> Option<EventKind> {
        EventKind::from_name(&self.name)
    }
}

// ---- minimal JSON ----

#[derive(Clone, Debug, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') || b.is_ascii_digit())
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume the whole unescaped run in one slice —
                    // validating per character would rescan the rest of
                    // the input each time. `"` and `\` are ASCII, so a
                    // valid UTF-8 sequence never straddles the stop.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while self
                        .bytes
                        .get(end)
                        .is_some_and(|b| !matches!(b, b'"' | b'\\'))
                    {
                        end += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("bad utf-8"))?;
                    out.push_str(run);
                    self.pos = end;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a Chrome-trace JSON document (object format or bare array)
/// into its events. Returns a human-readable error for malformed JSON
/// or events missing required fields.
pub fn parse(json: &str) -> Result<Vec<ChromeEvent>, String> {
    let mut p = Parser::new(json);
    let root = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    let events = match &root {
        Value::Arr(items) => items.as_slice(),
        Value::Obj(_) => match root.get("traceEvents") {
            Some(Value::Arr(items)) => items.as_slice(),
            _ => return Err("missing traceEvents array".to_string()),
        },
        _ => return Err("root must be an object or array".to_string()),
    };
    let mut out = Vec::with_capacity(events.len());
    for (i, ev) in events.iter().enumerate() {
        let field = |key: &str| -> Result<&Value, String> {
            ev.get(key)
                .ok_or_else(|| format!("event {i}: missing \"{key}\""))
        };
        let name = field("name")?
            .as_str()
            .ok_or_else(|| format!("event {i}: name not a string"))?
            .to_string();
        let ph = field("ph")?
            .as_str()
            .ok_or_else(|| format!("event {i}: ph not a string"))?
            .to_string();
        let num = |key: &str, required: bool| -> Result<f64, String> {
            match ev.get(key) {
                Some(v) => v
                    .as_f64()
                    .ok_or_else(|| format!("event {i}: {key} not a number")),
                None if required => Err(format!("event {i}: missing \"{key}\"")),
                None => Ok(0.0),
            }
        };
        let ts_us = num("ts", ph != "M")?;
        let dur_us = num("dur", false)?;
        out.push(ChromeEvent {
            name,
            ph,
            ts_ns: (ts_us * 1000.0).round() as u64,
            dur_ns: (dur_us * 1000.0).round() as u64,
            pid: num("pid", true)? as u16,
            tid: num("tid", true)? as u16,
        });
    }
    Ok(out)
}

/// Checks that the `"X"` complete spans of a parsed trace nest
/// properly: within each `(pid, tid)` track, any two spans are either
/// disjoint or one fully contains the other. Partial overlap means the
/// producer misattributed work (two computes on one worker at once) —
/// the trace-backed oracle treats that as a bug.
pub fn check_nesting(events: &[ChromeEvent]) -> Result<(), String> {
    let mut tracks: std::collections::BTreeMap<(u16, u16), Vec<(u64, u64)>> =
        std::collections::BTreeMap::new();
    for ev in events {
        if ev.ph == "X" {
            tracks
                .entry((ev.pid, ev.tid))
                .or_default()
                .push((ev.ts_ns, ev.ts_ns + ev.dur_ns));
        }
    }
    for ((pid, tid), mut spans) in tracks {
        // Start ascending; for equal starts, longest first so the
        // container precedes the contained.
        spans.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut stack: Vec<u64> = Vec::new();
        for (start, end) in spans {
            while stack.last().is_some_and(|&top| start >= top) {
                stack.pop();
            }
            if let Some(&top) = stack.last() {
                if end > top {
                    return Err(format!(
                        "pid {pid} tid {tid}: span [{start}, {end}] partially overlaps \
                         enclosing span ending at {top}"
                    ));
                }
            }
            stack.push(end);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};

    fn trace(events: Vec<Event>) -> Trace {
        Trace { events, dropped: 0 }
    }

    #[test]
    fn render_parse_round_trip() {
        let t = trace(vec![
            Event {
                ts_ns: 1_234,
                dur_ns: 567,
                place: 0,
                worker: 1,
                kind: EventKind::VertexCompute,
                arg: 99,
            },
            Event {
                ts_ns: 2_000,
                dur_ns: 0,
                place: 1,
                worker: 0,
                kind: EventKind::CacheMiss,
                arg: 0,
            },
        ]);
        let json = render(&t);
        let parsed = parse(&json).unwrap();
        // 2 metadata records (2 places) + 2 events.
        assert_eq!(parsed.len(), 4);
        let x = parsed.iter().find(|e| e.ph == "X").unwrap();
        assert_eq!(x.name, "vertex-compute");
        assert_eq!(x.ts_ns, 1_234);
        assert_eq!(x.dur_ns, 567);
        assert_eq!((x.pid, x.tid), (0, 1));
        let i = parsed.iter().find(|e| e.ph == "i").unwrap();
        assert_eq!(i.name, "cache-miss");
        assert_eq!(i.kind(), Some(EventKind::CacheMiss));
    }

    #[test]
    fn us_formatting_is_exact() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(999), "0.999");
        assert_eq!(us(1_000), "1.000");
        assert_eq!(us(1_234_567), "1234.567");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("not json").is_err());
        assert!(parse("{\"traceEvents\": 3}").is_err());
        assert!(parse("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
    }

    #[test]
    fn nesting_accepts_containment_rejects_overlap() {
        let span = |ts, dur, tid| ChromeEvent {
            name: "s".into(),
            ph: "X".into(),
            ts_ns: ts,
            dur_ns: dur,
            pid: 0,
            tid,
        };
        // [0,100] contains [10,20] and [30,40]; separate tid unaffected.
        assert!(check_nesting(&[
            span(0, 100, 0),
            span(10, 10, 0),
            span(30, 10, 0),
            span(50, 100, 1),
        ])
        .is_ok());
        // [0,100] and [50,150] partially overlap on one tid.
        assert!(check_nesting(&[span(0, 100, 0), span(50, 100, 0)]).is_err());
        // Same pair on different tids is fine.
        assert!(check_nesting(&[span(0, 100, 0), span(50, 100, 1)]).is_ok());
    }
}

//! Human-readable per-place phase summary.
//!
//! Aggregates a trace into one row per `(place, kind)`: how many events
//! of that kind happened there and how much span time they cover. This
//! is the `dpx10 trace summarize` output and the EXPERIMENTS.md
//! artifact format.

use std::collections::BTreeMap;

use crate::chrome::ChromeEvent;
use crate::recorder::Trace;

/// One aggregated row of the phase summary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseRow {
    /// Place the events happened at.
    pub place: u16,
    /// Event name (an [`EventKind::name`](crate::EventKind::name) for
    /// recorder-produced traces).
    pub name: String,
    /// Number of events.
    pub count: u64,
    /// Summed span duration in nanoseconds (0 for instants).
    pub total_ns: u64,
}

fn rows_from(iter: impl Iterator<Item = (u16, String, u64)>) -> Vec<PhaseRow> {
    let mut agg: BTreeMap<(u16, String), (u64, u64)> = BTreeMap::new();
    for (place, name, dur) in iter {
        let e = agg.entry((place, name)).or_insert((0, 0));
        e.0 += 1;
        e.1 += dur;
    }
    agg.into_iter()
        .map(|((place, name), (count, total_ns))| PhaseRow {
            place,
            name,
            count,
            total_ns,
        })
        .collect()
}

/// Aggregates a drained [`Trace`] into phase rows, sorted by place then
/// name.
pub fn rows(trace: &Trace) -> Vec<PhaseRow> {
    rows_from(
        trace
            .events
            .iter()
            .map(|e| (e.place, e.kind.name().to_string(), e.dur_ns)),
    )
}

/// Aggregates parsed Chrome events (metadata records excluded) into
/// phase rows.
pub fn rows_from_chrome(events: &[ChromeEvent]) -> Vec<PhaseRow> {
    rows_from(
        events
            .iter()
            .filter(|e| e.ph != "M")
            .map(|e| (e.pid, e.name.clone(), e.dur_ns)),
    )
}

fn fmt_ns(ns: u64) -> String {
    if ns == 0 {
        "-".to_string()
    } else if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

/// Renders phase rows as an aligned text table; `dropped` (if nonzero)
/// is reported on a trailing line.
pub fn render(rows: &[PhaseRow], dropped: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>5}  {:<16} {:>10} {:>12}\n",
        "place", "phase", "count", "total"
    ));
    let mut last_place = None;
    for row in rows {
        if last_place.is_some() && last_place != Some(row.place) {
            out.push('\n');
        }
        last_place = Some(row.place);
        out.push_str(&format!(
            "{:>5}  {:<16} {:>10} {:>12}\n",
            row.place,
            row.name,
            row.count,
            fmt_ns(row.total_ns)
        ));
    }
    if rows.is_empty() {
        out.push_str("(no events)\n");
    }
    if dropped > 0 {
        out.push_str(&format!(
            "\n{dropped} event(s) dropped (ring wrapped; keep the latest window)\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};

    #[test]
    fn aggregates_and_renders() {
        let trace = Trace {
            events: vec![
                Event {
                    ts_ns: 0,
                    dur_ns: 100,
                    place: 0,
                    worker: 0,
                    kind: EventKind::VertexCompute,
                    arg: 0,
                },
                Event {
                    ts_ns: 200,
                    dur_ns: 300,
                    place: 0,
                    worker: 1,
                    kind: EventKind::VertexCompute,
                    arg: 1,
                },
                Event {
                    ts_ns: 50,
                    dur_ns: 0,
                    place: 1,
                    worker: 0,
                    kind: EventKind::CacheHit,
                    arg: 0,
                },
            ],
            dropped: 3,
        };
        let r = rows(&trace);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].place, 0);
        assert_eq!(r[0].count, 2);
        assert_eq!(r[0].total_ns, 400);
        assert_eq!(r[1].name, "cache-hit");
        let text = render(&r, trace.dropped);
        assert!(text.contains("vertex-compute"));
        assert!(text.contains("3 event(s) dropped"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_ns(0), "-");
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(1_500_000_000), "1.500s");
    }
}

//! Flight-recorder observability for DPX10.
//!
//! The paper's evaluation is timing-and-communication evidence; this
//! crate is how the reproduction produces the same kind of evidence
//! from its own runs. It provides:
//!
//! - an [`Event`] model shared by every backend — spans (vertex
//!   compute, snapshot, recovery) and instants (ready-list pops, cache
//!   hits/misses, pull round-trips, frames on the wire, control
//!   protocol), stamped in nanoseconds on whichever clock the producer
//!   has (monotonic for real engines, the virtual clock for the
//!   simulator);
//! - a wait-free bounded [`ring`] per place with drop accounting, so
//!   recording never blocks the hot path and lost history is reported,
//!   not silent;
//! - a [`Recorder`] handle that is off by default (a disabled recorder
//!   is one branch per call site);
//! - a [`metrics`] [`Registry`] (counters, gauges, nanosecond
//!   histograms) with Prometheus text export;
//! - exporters: [`chrome`] `trace_event` JSON (loads in
//!   `chrome://tracing` / Perfetto, with a validating parser for CI),
//!   and a per-place phase [`summary`];
//! - trace-backed [`oracle`] checks (span nesting, recovery counts)
//!   for the chaos harness.

#![warn(missing_docs)]

pub mod chrome;
pub mod event;
pub mod metrics;
pub mod oracle;
pub mod recorder;
pub mod ring;
pub mod summary;

pub use event::{Event, EventKind, RUNTIME_WORKER};
pub use metrics::{Counter, Gauge, HistogramNs, Registry};
pub use recorder::{Recorder, Trace, DEFAULT_CAPACITY};
pub use ring::Ring;

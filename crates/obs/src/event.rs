//! The event model of the flight recorder.
//!
//! One [`Event`] is either a *span* (an interval with a duration —
//! vertex compute, a snapshot exchange, a recovery pass) or an
//! *instant* (a point — a ready-list pop, a cache hit, a frame hitting
//! the wire). Every event carries a place and a worker so exporters can
//! lay events out on per-place, per-worker tracks, plus one free `arg`
//! word whose meaning depends on the kind (bytes, epoch, packed vertex
//! id).
//!
//! Timestamps are nanoseconds on whatever clock the producer uses: the
//! real engines stamp against the recorder's monotonic anchor, the
//! simulator stamps its virtual clock directly — one schema for both,
//! so a simulated trace and a real trace load in the same tools.

/// What an [`Event`] describes. Spans ([`EventKind::is_span`]) carry a
/// duration; everything else is an instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A vertex compute occupying a worker (span; arg = packed vertex id).
    VertexCompute = 1,
    /// A ready-list pop that yielded work (instant; arg = local index).
    ReadyPop = 2,
    /// A remote dependency served from the FIFO cache (instant).
    CacheHit = 3,
    /// A remote dependency missing from the cache (instant; a pull
    /// follows).
    CacheMiss = 4,
    /// A pull request issued to a dependency's owner (instant; arg =
    /// packed vertex id). Pair with [`EventKind::PullFill`] of the same
    /// arg for the round-trip.
    PullIssue = 5,
    /// A pull reply filled parked vertices (instant; arg = packed
    /// vertex id).
    PullFill = 6,
    /// A message handed to a modelled transport (instant; arg = wire
    /// bytes).
    MsgSend = 7,
    /// A frame encoded and written to a real socket (instant; arg =
    /// framed bytes).
    FrameSend = 8,
    /// A frame read off a real socket (instant; arg = payload bytes).
    FrameRecv = 9,
    /// A slot snapshot built and exchanged for recovery or run end
    /// (span; arg = cells carried).
    Snapshot = 10,
    /// One recovery pass of the paper's §VI-D protocol (span; arg =
    /// the epoch that failed).
    Recovery = 11,
    /// An epoch began (instant; arg = epoch).
    EpochStart = 12,
    /// Control plane: a `Stop` was sent or obeyed (instant; arg = epoch).
    CtlStop = 13,
    /// Control plane: an `Abort` was sent or obeyed (instant; arg = epoch).
    CtlAbort = 14,
    /// Control plane: a `Resume` was sent or obeyed (instant; arg = the
    /// new epoch).
    CtlResume = 15,
    /// Control plane: a planned `Die` was fired or obeyed (instant; arg
    /// = the victim place, or the epoch when obeyed).
    CtlDie = 16,
    /// Control plane: the run-over `Done` release (instant).
    CtlDone = 17,
    /// A fault was detected and the epoch abandoned (instant; arg =
    /// epoch).
    Fault = 18,
    /// The progress watchdog declared a stall (instant; arg = finished
    /// count).
    Stalled = 19,
    /// A coalescing buffer flushed a batch to the transport (instant;
    /// arg = entries carried, i.e. the batch occupancy at flush time).
    BatchFlush = 20,
    /// Multi-job scheduler: a job's driver was admitted on this place
    /// (instant; arg = job id).
    JobAdmit = 21,
    /// Multi-job scheduler: a job's driver completed on this place
    /// (instant; arg = job id).
    JobDone = 22,
    /// Elastic mesh: a place joined the running mesh, measured from
    /// the `JoinReq` dial to readiness (span; arg = the joiner's
    /// place id).
    Join = 23,
    /// Elastic mesh: a place drained out gracefully, measured from the
    /// drain decision to the `Leave` sign-off (span; arg = the
    /// drained place id).
    Drain = 24,
    /// Elastic mesh: one chunk relocated to a new owner, offer to ack
    /// (span; arg = the slot moved).
    Relocate = 25,
}

impl EventKind {
    /// Every kind, for exporters and tests.
    pub const ALL: [EventKind; 25] = [
        EventKind::VertexCompute,
        EventKind::ReadyPop,
        EventKind::CacheHit,
        EventKind::CacheMiss,
        EventKind::PullIssue,
        EventKind::PullFill,
        EventKind::MsgSend,
        EventKind::FrameSend,
        EventKind::FrameRecv,
        EventKind::Snapshot,
        EventKind::Recovery,
        EventKind::EpochStart,
        EventKind::CtlStop,
        EventKind::CtlAbort,
        EventKind::CtlResume,
        EventKind::CtlDie,
        EventKind::CtlDone,
        EventKind::Fault,
        EventKind::Stalled,
        EventKind::BatchFlush,
        EventKind::JobAdmit,
        EventKind::JobDone,
        EventKind::Join,
        EventKind::Drain,
        EventKind::Relocate,
    ];

    /// Whether events of this kind carry a meaningful duration.
    pub fn is_span(self) -> bool {
        matches!(
            self,
            EventKind::VertexCompute
                | EventKind::Snapshot
                | EventKind::Recovery
                | EventKind::Join
                | EventKind::Drain
                | EventKind::Relocate
        )
    }

    /// The stable exporter name (also the Chrome trace event name).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::VertexCompute => "vertex-compute",
            EventKind::ReadyPop => "ready-pop",
            EventKind::CacheHit => "cache-hit",
            EventKind::CacheMiss => "cache-miss",
            EventKind::PullIssue => "pull-issue",
            EventKind::PullFill => "pull-fill",
            EventKind::MsgSend => "msg-send",
            EventKind::FrameSend => "frame-send",
            EventKind::FrameRecv => "frame-recv",
            EventKind::Snapshot => "snapshot",
            EventKind::Recovery => "recovery",
            EventKind::EpochStart => "epoch-start",
            EventKind::CtlStop => "ctl-stop",
            EventKind::CtlAbort => "ctl-abort",
            EventKind::CtlResume => "ctl-resume",
            EventKind::CtlDie => "ctl-die",
            EventKind::CtlDone => "ctl-done",
            EventKind::Fault => "fault",
            EventKind::Stalled => "stalled",
            EventKind::BatchFlush => "batch-flush",
            EventKind::JobAdmit => "job-admit",
            EventKind::JobDone => "job-done",
            EventKind::Join => "join",
            EventKind::Drain => "drain",
            EventKind::Relocate => "relocate",
        }
    }

    /// Decodes a packed kind byte; `None` for unknown values (torn or
    /// corrupt slots).
    pub fn from_u8(v: u8) -> Option<EventKind> {
        Self::ALL.iter().copied().find(|k| *k as u8 == v)
    }

    /// Looks a kind up by its exporter [`name`](EventKind::name).
    pub fn from_name(name: &str) -> Option<EventKind> {
        Self::ALL.iter().copied().find(|k| k.name() == name)
    }
}

/// The worker id used for events not attributable to a specific worker
/// thread (transport activity, control protocol, watchdogs). Exporters
/// show it as a dedicated "runtime" track per place.
pub const RUNTIME_WORKER: u16 = u16::MAX;

/// One recorded event. 32 bytes; packs to four `u64` ring-buffer words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Start time, nanoseconds on the producer's clock.
    pub ts_ns: u64,
    /// Duration in nanoseconds; zero for instants.
    pub dur_ns: u64,
    /// The place the event happened at.
    pub place: u16,
    /// The worker track within the place ([`RUNTIME_WORKER`] for
    /// runtime-level events).
    pub worker: u16,
    /// What happened.
    pub kind: EventKind,
    /// Kind-dependent payload (bytes, epoch, packed vertex id…).
    pub arg: u64,
}

impl Event {
    /// End time of the event (`ts_ns` for instants).
    pub fn end_ns(&self) -> u64 {
        self.ts_ns.saturating_add(self.dur_ns)
    }

    /// Packs the event into the ring buffer's four payload words.
    pub(crate) fn to_words(self) -> [u64; 4] {
        let meta =
            (self.kind as u64) | (u64::from(self.place) << 8) | (u64::from(self.worker) << 24);
        [self.ts_ns, self.dur_ns, meta, self.arg]
    }

    /// Unpacks four ring-buffer words; `None` if the kind byte is not a
    /// known kind (a torn slot read concurrently with a writer).
    pub(crate) fn from_words(w: [u64; 4]) -> Option<Event> {
        let kind = EventKind::from_u8((w[2] & 0xff) as u8)?;
        Some(Event {
            ts_ns: w[0],
            dur_ns: w[1],
            place: ((w[2] >> 8) & 0xffff) as u16,
            worker: ((w[2] >> 24) & 0xffff) as u16,
            kind,
            arg: w[3],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_round_trip() {
        let ev = Event {
            ts_ns: 123_456_789,
            dur_ns: 42,
            place: 513,
            worker: RUNTIME_WORKER,
            kind: EventKind::Snapshot,
            arg: u64::MAX,
        };
        assert_eq!(Event::from_words(ev.to_words()), Some(ev));
    }

    #[test]
    fn unknown_kind_is_rejected() {
        assert_eq!(Event::from_words([0, 0, 0xff, 0]), None);
        assert_eq!(Event::from_words([0, 0, 0, 0]), None);
    }

    #[test]
    fn kind_names_are_unique_and_reversible() {
        for k in EventKind::ALL {
            assert_eq!(EventKind::from_u8(k as u8), Some(k));
            assert_eq!(EventKind::from_name(k.name()), Some(k));
        }
        let mut names: Vec<&str> = EventKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EventKind::ALL.len());
    }

    #[test]
    fn span_classification() {
        assert!(EventKind::VertexCompute.is_span());
        assert!(EventKind::Recovery.is_span());
        assert!(!EventKind::CacheHit.is_span());
    }
}

//! Lock-free bounded event rings.
//!
//! One [`Ring`] per place. Writers are the place's worker threads plus
//! the runtime threads (transport writers/readers, the driver); any
//! number may push concurrently. A push is one `fetch_add` to claim a
//! slot plus five relaxed/release stores — it never blocks, never
//! allocates, and never spins. When the ring is full, new events
//! overwrite the oldest (the recorder keeps the *latest* window) and
//! the overwritten ones are counted as dropped, so exporters can state
//! exactly how much history was lost.
//!
//! Draining is a read-only scan done at quiesce time (end of run),
//! when writers have stopped. A slot is live iff its sequence word
//! equals the claim that last wrote it; a slot caught mid-write (seq
//! zeroed or stale) reads as dropped rather than as a torn event.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::event::Event;

/// The number of `u64` payload words per slot (see [`Event::to_words`]).
const WORDS: usize = 4;

struct Slot {
    /// 0 while a write is in flight; `claim + 1` once the payload for
    /// ring claim `claim` is fully published.
    seq: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }
}

/// A multi-producer bounded ring of [`Event`]s with drop accounting.
pub struct Ring {
    slots: Box<[Slot]>,
    mask: u64,
    /// Total claims ever made; `head % capacity` is the next slot.
    head: AtomicU64,
}

impl Ring {
    /// Creates a ring holding `capacity` events, rounded up to a power
    /// of two (minimum 8).
    pub fn new(capacity: usize) -> Ring {
        let cap = capacity.next_power_of_two().max(8);
        let slots: Vec<Slot> = (0..cap).map(|_| Slot::new()).collect();
        Ring {
            slots: slots.into_boxed_slice(),
            mask: (cap - 1) as u64,
            head: AtomicU64::new(0),
        }
    }

    /// Number of event slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records one event. Wait-free: one atomic claim, then plain
    /// stores into the claimed slot.
    pub fn push(&self, ev: Event) {
        let claim = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(claim & self.mask) as usize];
        // Invalidate first so a concurrent drain of a lapped slot sees
        // "in flight", not a hybrid of old and new payload words.
        slot.seq.store(0, Ordering::Release);
        let words = ev.to_words();
        for (w, v) in slot.words.iter().zip(words) {
            w.store(v, Ordering::Relaxed);
        }
        // claim + 1 so a fully-published claim 0 is distinct from the
        // in-flight marker.
        slot.seq.store(claim + 1, Ordering::Release);
    }

    /// Total events ever pushed (including ones later overwritten).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Reads out the surviving window of events, oldest first, plus the
    /// count of events lost to wrap-around or torn by in-flight writes.
    /// Intended for quiesce time; concurrent pushes are safe but land
    /// in `dropped`, never as corrupt events.
    pub fn drain(&self) -> (Vec<Event>, u64) {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let live = head.min(cap);
        let mut out = Vec::with_capacity(live as usize);
        for claim in (head - live)..head {
            let slot = &self.slots[(claim & self.mask) as usize];
            if slot.seq.load(Ordering::Acquire) != claim + 1 {
                continue; // lapped or mid-write: counted as dropped below
            }
            let mut words = [0u64; WORDS];
            for (v, w) in words.iter_mut().zip(slot.words.iter()) {
                *v = w.load(Ordering::Relaxed);
            }
            // Re-check: if a writer lapped us between the seq read and
            // the payload reads, the words may be torn — discard.
            if slot.seq.load(Ordering::Acquire) != claim + 1 {
                continue;
            }
            if let Some(ev) = Event::from_words(words) {
                out.push(ev);
            }
        }
        let dropped = head - out.len() as u64;
        (out, dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(i: u64) -> Event {
        Event {
            ts_ns: i,
            dur_ns: 0,
            place: 0,
            worker: 0,
            kind: EventKind::ReadyPop,
            arg: i,
        }
    }

    #[test]
    fn keeps_latest_window_and_counts_drops() {
        let ring = Ring::new(8);
        for i in 0..20 {
            ring.push(ev(i));
        }
        let (events, dropped) = ring.drain();
        assert_eq!(events.len(), 8);
        assert_eq!(dropped, 12);
        let args: Vec<u64> = events.iter().map(|e| e.arg).collect();
        assert_eq!(args, (12..20).collect::<Vec<u64>>());
    }

    #[test]
    fn under_capacity_drops_nothing() {
        let ring = Ring::new(16);
        for i in 0..5 {
            ring.push(ev(i));
        }
        let (events, dropped) = ring.drain();
        assert_eq!(events.len(), 5);
        assert_eq!(dropped, 0);
    }

    #[test]
    fn capacity_rounds_up() {
        assert_eq!(Ring::new(1000).capacity(), 1024);
        assert_eq!(Ring::new(1).capacity(), 8);
    }
}
